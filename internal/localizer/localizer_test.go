package localizer

import (
	"reflect"
	"testing"

	"rpingmesh/internal/topo"
)

func TestDemocraticShares(t *testing.T) {
	// One 2-hop bad flow and one 4-hop bad flow sharing link 1: the
	// shared link gets 1/2 + 1/4 = 3/4 of a vote and wins over every
	// exclusively-crossed link.
	paths := [][]topo.LinkID{
		{1, 2},
		{1, 3, 4, 5},
	}
	scores := Vote007(paths, 1)
	if got := scores[1]; got != VoteScale/2+VoteScale/4 {
		t.Fatalf("shared link score = %d, want %d", got, VoteScale/2+VoteScale/4)
	}
	if got := scores[2]; got != VoteScale/2 {
		t.Fatalf("link 2 score = %d", got)
	}
	top := Top(scores)
	if len(top) != 1 || top[0].Link != 1 {
		t.Fatalf("top = %+v, want link 1 alone", top)
	}
	if top[0].Votes() != 1 {
		t.Fatalf("Votes() = %d, want 1 (3/4 rounds up)", top[0].Votes())
	}
}

func TestLongPathsImplicateWeakly(t *testing.T) {
	// Algorithm 1 would tie these: every link crossed by exactly two bad
	// paths. 007 blames the short paths' link because each short flow
	// commits half a vote to it while the long flows dilute theirs.
	paths := [][]topo.LinkID{
		{10, 11}, {10, 12},
		{20, 21, 22, 23}, {20, 24, 25, 26},
	}
	top := Top(Vote007(paths, 1))
	if len(top) != 1 || top[0].Link != 10 {
		t.Fatalf("top = %+v, want link 10 alone", top)
	}
}

func TestShardedTallyMatchesSerial(t *testing.T) {
	var paths [][]topo.LinkID
	for i := 0; i < 500; i++ {
		p := make([]topo.LinkID, 1+i%12)
		for j := range p {
			p[j] = topo.LinkID((i*7 + j*3) % 64)
		}
		paths = append(paths, p)
	}
	serial := Vote007(paths, 1)
	for _, workers := range []int{2, 4, 8} {
		if got := Vote007(paths, workers); !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d tally diverged from serial", workers)
		}
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if Top(Vote007(nil, 4)) != nil {
		t.Fatal("no paths must yield no suspects")
	}
	if got := Vote007([][]topo.LinkID{{}, {}}, 1); len(got) != 0 {
		t.Fatalf("empty paths voted: %v", got)
	}
}

func TestTiesSortedByLink(t *testing.T) {
	paths := [][]topo.LinkID{{5, 3}, {3, 5}}
	top := Top(Vote007(paths, 1))
	if len(top) != 2 || top[0].Link != 3 || top[1].Link != 5 {
		t.Fatalf("ties not sorted: %+v", top)
	}
}

func BenchmarkLocalizer007(b *testing.B) {
	// Representative anomalous-window load: a few thousand probe+ACK
	// paths (12 hops cross-pod) over a few hundred fabric links.
	var paths [][]topo.LinkID
	for i := 0; i < 4096; i++ {
		p := make([]topo.LinkID, 12)
		for j := range p {
			p[j] = topo.LinkID((i*13 + j*5) % 320)
		}
		paths = append(paths, p)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Top(Vote007(paths, 1))
	}
}
