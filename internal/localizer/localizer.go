// Package localizer implements 007's democratic per-flow link voting
// (Arzani et al., NSDI 2018 — PAPERS.md) as a drop-in competitor to the
// paper's Algorithm 1 for the Analyzer's switch-localization stage.
//
// Where Algorithm 1 gives every anomalous path one whole vote per link it
// crosses, 007 is democratic: each bad flow distributes a single vote
// equally over its path, so a flow crossing h links adds 1/h to each.
// Long paths therefore implicate their links more weakly than short
// ones, which compensates for the fact that long paths cross more links
// by construction. The most-voted link is blamed.
//
// Votes are scaled integers: VoteScale is divisible by every path length
// up to 16 hops, so 1/h is exact, tallies merge commutatively across
// worker shards, and the result is bit-identical for any worker count —
// the same determinism contract Algorithm 1's integer votes satisfy.
package localizer

import (
	"sort"
	"sync"

	"rpingmesh/internal/topo"
)

// VoteScale is the fixed-point denominator: 720720 = lcm(1..16), so a
// 1/h vote share is exact for any path of at most 16 links. Longer paths
// (none exist in our Clos fabrics: probe+ACK tops out at 12) truncate.
const VoteScale = 720720

// LinkScore is one link's accumulated democratic vote mass.
type LinkScore struct {
	Link topo.LinkID
	// Score is in 1/VoteScale vote units: a whole vote is VoteScale.
	Score int64
}

// Votes reports the score in whole-vote units, rounded up so a link
// implicated by even a sliver of a vote never reports zero evidence.
func (s LinkScore) Votes() int {
	return int((s.Score + VoteScale - 1) / VoteScale)
}

// Vote007 tallies democratic votes over the anomalous paths: each path
// adds VoteScale/len(path) to every link it crosses. Sharded over
// workers when asked; shards take disjoint path subsets and the integer
// scores merge commutatively, so the tally is identical to a serial
// count for any worker count.
func Vote007(paths [][]topo.LinkID, workers int) map[topo.LinkID]int64 {
	if workers < 1 {
		workers = 1
	}
	locals := make([]map[topo.LinkID]int64, workers)
	runSharded(workers, func(w int) {
		m := make(map[topo.LinkID]int64)
		for i := w; i < len(paths); i += workers {
			p := paths[i]
			if len(p) == 0 {
				continue
			}
			share := int64(VoteScale / len(p))
			for _, link := range p {
				m[link] += share
			}
		}
		locals[w] = m
	})
	merged := locals[0]
	for _, m := range locals[1:] {
		for l, v := range m {
			merged[l] += v
		}
	}
	return merged
}

// Top returns every link sharing the highest score (ties are all
// suspicious), sorted by link ID for determinism — the same contract as
// Algorithm 1's topVotes.
func Top(scores map[topo.LinkID]int64) []LinkScore {
	if len(scores) == 0 {
		return nil
	}
	var max int64
	for _, v := range scores {
		if v > max {
			max = v
		}
	}
	var out []LinkScore
	for l, v := range scores {
		if v == max {
			out = append(out, LinkScore{Link: l, Score: v})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Link < out[j].Link })
	return out
}

// runSharded fans fn out over n workers and waits; n <= 1 runs inline.
func runSharded(n int, fn func(worker int)) {
	if n <= 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}
