// Package verbs is the thin verbs-API front-end services use to manage
// RDMA connections, plus the kernel-tracing hook R-Pingmesh's Agent relies
// on for service awareness.
//
// In the paper (§4.2.2), the Agent attaches eBPF kprobes to the kernel
// functions modify_qp and destroy_qp: connection establishment and
// teardown are the only moments the service-flow 5-tuple is visible, and
// hooking them costs nothing on the data path. Here the same information
// flows through the Tracer interface: every ModifyQPToRTS/DestroyQP call
// on a host's Stack notifies the tracers registered on that host. The
// information content is identical to the eBPF hook — 5-tuples exactly at
// establish/close time, no polling.
package verbs

import (
	"fmt"
	"net/netip"

	"rpingmesh/internal/ecmp"
	"rpingmesh/internal/rnic"
	"rpingmesh/internal/topo"
)

// ConnEvent describes an RDMA connection transition observed at the
// kernel boundary.
type ConnEvent struct {
	Host     topo.HostID
	LocalDev topo.DeviceID
	// Tuple is the outer 5-tuple the connection's packets carry; ECMP
	// routes probes with the same tuple onto the service's exact path.
	Tuple ecmp.FiveTuple
	// The internal 4-tuple (GIDs + QPNs) identifying the flow to RDMA.
	LocalGID, RemoteGID string
	LocalQPN, RemoteQPN rnic.QPN
}

// Tracer observes connection lifecycle events on one host — the
// eBPF-equivalent hook.
type Tracer interface {
	QPModified(ev ConnEvent)
	QPDestroyed(ev ConnEvent)
}

// Stack is the per-host verbs entry point.
type Stack struct {
	host    *rnic.Host
	tracers []Tracer
	active  map[qpKey]ConnEvent
}

type qpKey struct {
	dev topo.DeviceID
	qpn rnic.QPN
}

// NewStack wraps a host's devices with a verbs interface.
func NewStack(host *rnic.Host) *Stack {
	return &Stack{host: host, active: make(map[qpKey]ConnEvent)}
}

// Host returns the underlying host.
func (s *Stack) Host() *rnic.Host { return s.host }

// RegisterTracer attaches a lifecycle tracer (the Agent's service-flow
// monitor). Multiple tracers may coexist.
func (s *Stack) RegisterTracer(t Tracer) { s.tracers = append(s.tracers, t) }

// Device finds a local device by ID.
func (s *Stack) Device(id topo.DeviceID) (*rnic.Device, error) {
	for _, d := range s.host.Devices() {
		if d.ID() == id {
			return d, nil
		}
	}
	return nil, fmt.Errorf("verbs: host %s has no device %s", s.host.ID(), id)
}

// CreateQP allocates a queue pair on a local device.
func (s *Stack) CreateQP(dev *rnic.Device, typ rnic.QPType) *rnic.QP {
	return dev.CreateQP(typ)
}

// ModifyQPToRTS connects an RC/UC queue pair to a remote endpoint using
// the given source port (the application-chosen flow label) and fires the
// modify_qp trace event.
func (s *Stack) ModifyQPToRTS(dev *rnic.Device, qp *rnic.QP, srcPort uint16, remoteIP netip.Addr, remoteGID string, remoteQPN rnic.QPN) error {
	if err := qp.Connect(remoteIP, remoteGID, remoteQPN); err != nil {
		return err
	}
	ev := ConnEvent{
		Host:     s.host.ID(),
		LocalDev: dev.ID(),
		Tuple:    ecmp.RoCETuple(dev.IP(), remoteIP, srcPort),
		LocalGID: dev.GID(), RemoteGID: remoteGID,
		LocalQPN: qp.QPN(), RemoteQPN: remoteQPN,
	}
	key := qpKey{dev.ID(), qp.QPN()}
	if old, rehomed := s.active[key]; rehomed && old.Tuple != ev.Tuple {
		// Re-modify with a new source port (the §7.3 load-balancing
		// action): the tracer sees the old flow end and the new one
		// begin, so service-tracing pinglists follow the reroute.
		for _, t := range s.tracers {
			t.QPDestroyed(old)
		}
	}
	s.active[key] = ev
	for _, t := range s.tracers {
		t.QPModified(ev)
	}
	return nil
}

// DestroyQP tears down a queue pair and, if it was a traced connection,
// fires the destroy_qp trace event.
func (s *Stack) DestroyQP(dev *rnic.Device, qp *rnic.QP) {
	key := qpKey{dev.ID(), qp.QPN()}
	ev, traced := s.active[key]
	dev.DestroyQP(qp.QPN())
	if !traced {
		return
	}
	delete(s.active, key)
	for _, t := range s.tracers {
		t.QPDestroyed(ev)
	}
}

// ActiveConnections returns the current traced connections on this host.
func (s *Stack) ActiveConnections() []ConnEvent {
	out := make([]ConnEvent, 0, len(s.active))
	for _, ev := range s.active {
		out = append(out, ev)
	}
	return out
}
