package verbs

import (
	"net/netip"
	"testing"

	"rpingmesh/internal/rnic"
	"rpingmesh/internal/sim"
)

type recordingTracer struct {
	modified  []ConnEvent
	destroyed []ConnEvent
}

func (r *recordingTracer) QPModified(ev ConnEvent)  { r.modified = append(r.modified, ev) }
func (r *recordingTracer) QPDestroyed(ev ConnEvent) { r.destroyed = append(r.destroyed, ev) }

func testStack(t *testing.T) (*Stack, *rnic.Device, *rnic.Device) {
	t.Helper()
	eng := sim.New(1)
	net := &rnic.DropNetwork{}
	h := rnic.NewHost(eng, "host-a", rnic.Clock{})
	local := rnic.NewDevice(eng, net, rnic.Config{ID: "rnic-l", IP: ip(1), GID: "gid-l", Host: "host-a"})
	h.Attach(local)
	remote := rnic.NewDevice(eng, net, rnic.Config{ID: "rnic-r", IP: ip(2), GID: "gid-r", Host: "host-b"})
	return NewStack(h), local, remote
}

func ip(last byte) netip.Addr { return netip.AddrFrom4([4]byte{10, 0, 0, last}) }

func TestModifyAndDestroyFireTracer(t *testing.T) {
	s, local, remote := testStack(t)
	var tr recordingTracer
	s.RegisterTracer(&tr)

	rqp := remote.CreateQP(rnic.RC)
	qp := s.CreateQP(local, rnic.RC)
	if err := s.ModifyQPToRTS(local, qp, 7777, remote.IP(), remote.GID(), rqp.QPN()); err != nil {
		t.Fatalf("ModifyQPToRTS: %v", err)
	}
	if len(tr.modified) != 1 {
		t.Fatalf("modified events = %d", len(tr.modified))
	}
	ev := tr.modified[0]
	if ev.Host != "host-a" || ev.LocalDev != "rnic-l" {
		t.Fatalf("event identity: %+v", ev)
	}
	if ev.Tuple.SrcPort != 7777 || ev.Tuple.DstPort != 4791 {
		t.Fatalf("event tuple: %v", ev.Tuple)
	}
	if ev.LocalQPN != qp.QPN() || ev.RemoteQPN != rqp.QPN() {
		t.Fatalf("event QPNs: %+v", ev)
	}
	if ev.RemoteGID != "gid-r" {
		t.Fatalf("event remote GID: %+v", ev)
	}
	if got := len(s.ActiveConnections()); got != 1 {
		t.Fatalf("active = %d", got)
	}

	s.DestroyQP(local, qp)
	if len(tr.destroyed) != 1 {
		t.Fatalf("destroyed events = %d", len(tr.destroyed))
	}
	if tr.destroyed[0].Tuple != ev.Tuple {
		t.Fatal("destroy event tuple mismatch")
	}
	if len(s.ActiveConnections()) != 0 {
		t.Fatal("connection still active after destroy")
	}
}

func TestDestroyUntracedQPIsSilent(t *testing.T) {
	s, local, _ := testStack(t)
	var tr recordingTracer
	s.RegisterTracer(&tr)
	// A UD QP never goes through modify_qp-to-RTS, so destroying it must
	// not produce a destroy event (the Agent's own probing QPs are
	// invisible to service tracing).
	qp := s.CreateQP(local, rnic.UD)
	s.DestroyQP(local, qp)
	if len(tr.destroyed) != 0 {
		t.Fatal("untraced QP destroy fired a trace event")
	}
}

func TestModifyFailurePropagates(t *testing.T) {
	s, local, remote := testStack(t)
	var tr recordingTracer
	s.RegisterTracer(&tr)
	qp := s.CreateQP(local, rnic.UD) // UD cannot be connected
	if err := s.ModifyQPToRTS(local, qp, 1, remote.IP(), remote.GID(), 5); err == nil {
		t.Fatal("ModifyQPToRTS on UD QP succeeded")
	}
	if len(tr.modified) != 0 {
		t.Fatal("failed modify fired a trace event")
	}
}

func TestMultipleTracers(t *testing.T) {
	s, local, remote := testStack(t)
	var t1, t2 recordingTracer
	s.RegisterTracer(&t1)
	s.RegisterTracer(&t2)
	rqp := remote.CreateQP(rnic.RC)
	qp := s.CreateQP(local, rnic.RC)
	if err := s.ModifyQPToRTS(local, qp, 1, remote.IP(), remote.GID(), rqp.QPN()); err != nil {
		t.Fatal(err)
	}
	if len(t1.modified) != 1 || len(t2.modified) != 1 {
		t.Fatal("not all tracers notified")
	}
}

func TestDeviceLookup(t *testing.T) {
	s, local, _ := testStack(t)
	d, err := s.Device(local.ID())
	if err != nil || d != local {
		t.Fatalf("Device lookup: %v %v", d, err)
	}
	if _, err := s.Device("nope"); err == nil {
		t.Fatal("unknown device lookup succeeded")
	}
	if s.Host().ID() != "host-a" {
		t.Fatal("Host accessor")
	}
}

// Re-modifying a live connection with a new source port (the §7.3
// load-balancing action) fires destroy(old tuple) then modify(new tuple),
// so tuple-keyed service pinglists stay consistent.
func TestRemodifyFiresDestroyThenModify(t *testing.T) {
	s, local, remote := testStack(t)
	var tr recordingTracer
	s.RegisterTracer(&tr)
	rqp := remote.CreateQP(rnic.RC)
	qp := s.CreateQP(local, rnic.RC)
	if err := s.ModifyQPToRTS(local, qp, 1000, remote.IP(), remote.GID(), rqp.QPN()); err != nil {
		t.Fatal(err)
	}
	if err := s.ModifyQPToRTS(local, qp, 2000, remote.IP(), remote.GID(), rqp.QPN()); err != nil {
		t.Fatal(err)
	}
	if len(tr.modified) != 2 {
		t.Fatalf("modified events = %d, want 2", len(tr.modified))
	}
	if len(tr.destroyed) != 1 || tr.destroyed[0].Tuple.SrcPort != 1000 {
		t.Fatalf("destroyed events = %+v, want the old tuple", tr.destroyed)
	}
	if tr.modified[1].Tuple.SrcPort != 2000 {
		t.Fatalf("second modify tuple = %v", tr.modified[1].Tuple)
	}
	if got := len(s.ActiveConnections()); got != 1 {
		t.Fatalf("active = %d after remodify", got)
	}
	// Re-modifying with the SAME tuple must not fire a destroy.
	if err := s.ModifyQPToRTS(local, qp, 2000, remote.IP(), remote.GID(), rqp.QPN()); err != nil {
		t.Fatal(err)
	}
	if len(tr.destroyed) != 1 {
		t.Fatal("same-tuple remodify fired a destroy")
	}
}
