package cc

import (
	"testing"

	"rpingmesh/internal/ecmp"
	"rpingmesh/internal/qos"
	"rpingmesh/internal/sim"
	"rpingmesh/internal/simnet"
	"rpingmesh/internal/topo"
)

// Congestion control on a QoS-enabled fabric: ECN marks travel back as
// CNPs on their own priority, so the feedback delay depends on the CNP
// class's queue and pause state (internal/simnet qos mode). These tests
// pin the two regimes: a clean CNP priority keeps DCQCN/Improved
// convergent, and a congested CNP priority delays or starves feedback,
// measurably deepening the data-class queue before control bites.

// qosIncast drives an n-to-1 incast of DemandGbps flows carrying dscp
// onto one host and reports the max data-class queue depth on the
// victim downlink plus the mean aggregate throughput after warmup.
func qosIncast(t *testing.T, ccImpl simnet.CongestionControl, qcfg qos.Config, dscp uint8, horizon sim.Time) (maxQ, thr float64) {
	t.Helper()
	tp, err := topo.BuildClos(topo.ClosConfig{Pods: 1, ToRsPerPod: 2, AggsPerPod: 2, Spines: 2, HostsPerToR: 4, RNICsPerHost: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(3)
	// A 10µs tick makes realistic CNP transit times (tens of µs across a
	// congested class) span multiple ticks, so feedback delay is visible.
	net := simnet.New(eng, tp, simnet.Config{CC: ccImpl, QoS: qcfg, Tick: 10 * sim.Microsecond})
	cls := net.ClassOf(dscp)
	dst := tp.RNICsUnderToR("tor-0-1")[0]
	srcs := tp.RNICsUnderToR("tor-0-0")
	var flows []*simnet.Flow
	for i, s := range srcs {
		f, err := net.AddFlow(simnet.FlowSpec{
			Src: s, Dst: dst,
			Tuple:      ecmp.RoCETuple(tp.RNICs[s].IP, tp.RNICs[dst].IP, uint16(4000+i)),
			DemandGbps: 400, DSCP: dscp,
		})
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, f)
	}
	downlink := tp.LinkBetween(tp.RNICs[dst].ToR, dst)
	warm := horizon / 2
	samples := 0
	for eng.Now() < horizon {
		eng.RunUntil(eng.Now() + 100*sim.Microsecond)
		if q := net.ClassQueueBytesOn(downlink, cls); q > maxQ {
			maxQ = q
		}
		if eng.Now() >= warm {
			sum := 0.0
			for _, f := range flows {
				sum += f.Rate()
			}
			thr += sum
			samples++
		}
	}
	return maxQ, thr / float64(samples)
}

func TestDCQCNConvergesOnQoSFabric(t *testing.T) {
	// Healthy fabric, CNP on its own clean top priority: DCQCN must keep
	// the class queue bounded below the no-CC ceiling and utilization
	// sane — the QoS analogue of TestCCBoundsQueues.
	qNone, _ := qosIncast(t, nil, qos.Profile(4), 8, 100*sim.Millisecond)
	qDCQCN, thr := qosIncast(t, DCQCN{}, qos.Profile(4), 8, 100*sim.Millisecond)
	if qDCQCN >= qNone {
		t.Fatalf("DCQCN class queue (%v) not below no-CC ceiling (%v)", qDCQCN, qNone)
	}
	if thr < 200 || thr > 401 {
		t.Fatalf("DCQCN aggregate throughput %v outside (200, 401]", thr)
	}
}

func TestImprovedConvergesOnQoSFabric(t *testing.T) {
	qNone, _ := qosIncast(t, nil, qos.Profile(4), 8, 100*sim.Millisecond)
	qImp, thr := qosIncast(t, Improved{}, qos.Profile(4), 8, 100*sim.Millisecond)
	if qImp >= qNone {
		t.Fatalf("Improved class queue (%v) not below no-CC ceiling (%v)", qImp, qNone)
	}
	if thr < 200 || thr > 401 {
		t.Fatalf("Improved aggregate throughput %v outside (200, 401]", thr)
	}
}

// The CNP-priority lesson: when CNPs are misconfigured onto the SAME
// class as the data they police, the data's own congestion delays its
// own feedback (self-starvation) and queues run measurably deeper before
// control bites than with CNP on a clean dedicated priority.
func cnpStarvationDeepensQueue(t *testing.T, ccImpl simnet.CongestionControl) {
	t.Helper()
	const dataDSCP = 16     // class 2 under Profile(4)
	clean := qos.Profile(4) // CNP on class 3: always empty here
	dirty := qos.Profile(4)
	dirty.CNPClass = 2 // CNP rides the congested data class

	qClean, thrClean := qosIncast(t, ccImpl, clean, dataDSCP, 100*sim.Millisecond)
	qDirty, thrDirty := qosIncast(t, ccImpl, dirty, dataDSCP, 100*sim.Millisecond)

	if qDirty <= qClean {
		t.Fatalf("starved CNP did not deepen the queue: dirty=%v clean=%v", qDirty, qClean)
	}
	// Control still converges eventually in both regimes.
	if thrClean < 150 || thrClean > 401 || thrDirty < 150 || thrDirty > 401 {
		t.Fatalf("throughput out of range: clean=%v dirty=%v", thrClean, thrDirty)
	}
}

func TestDCQCNUnderCNPStarvation(t *testing.T)    { cnpStarvationDeepensQueue(t, DCQCN{}) }
func TestImprovedUnderCNPStarvation(t *testing.T) { cnpStarvationDeepensQueue(t, Improved{}) }

// Fairness survives class-dependent CNP delay: two DCQCN flows on the
// storage class still converge to a fair-ish split while a clean GPU
// class flow on the same wires keeps full line rate.
func TestDCQCNFairnessUnderQoS(t *testing.T) {
	tp, err := topo.BuildClos(topo.ClosConfig{Pods: 1, ToRsPerPod: 2, AggsPerPod: 1, Spines: 1, HostsPerToR: 3, RNICsPerHost: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(8)
	net := simnet.New(eng, tp, simnet.Config{CC: DCQCN{}, QoS: qos.Profile(4)})
	dstT := tp.RNICsUnderToR("tor-0-1")
	dst, dstGPU := dstT[0], dstT[1]
	srcs := tp.RNICsUnderToR("tor-0-0")
	var storage []*simnet.Flow
	for i, s := range srcs[:2] {
		f, err := net.AddFlow(simnet.FlowSpec{
			Src: s, Dst: dst,
			Tuple:      ecmp.RoCETuple(tp.RNICs[s].IP, tp.RNICs[dst].IP, uint16(6000+i)),
			DemandGbps: 400, DSCP: 8,
		})
		if err != nil {
			t.Fatal(err)
		}
		storage = append(storage, f)
	}
	gpu, err := net.AddFlow(simnet.FlowSpec{
		Src: srcs[2], Dst: dstGPU,
		Tuple:      ecmp.RoCETuple(tp.RNICs[srcs[2]].IP, tp.RNICs[dstGPU].IP, 7000),
		DemandGbps: 100, DSCP: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(300 * sim.Millisecond)
	sum := make([]float64, 2)
	gpuSum, samples := 0.0, 0
	for eng.Now() < 800*sim.Millisecond {
		eng.RunUntil(eng.Now() + 10*sim.Millisecond)
		for i, f := range storage {
			sum[i] += f.Rate()
		}
		gpuSum += gpu.Rate()
		samples++
	}
	a, b := sum[0]/float64(samples), sum[1]/float64(samples)
	if ratio := a / b; ratio < 0.5 || ratio > 2 {
		t.Fatalf("unfair storage split under QoS: %.1f vs %.1f Gbps", a, b)
	}
	// The per-class ECN threshold is a quarter of the legacy link-wide
	// one, so DCQCN marks earlier and settles below the no-QoS 250 Gbps.
	if a+b < 180 {
		t.Fatalf("storage aggregate %.1f Gbps underutilizes the bottleneck", a+b)
	}
	if g := gpuSum / float64(samples); g < 99 {
		t.Fatalf("GPU-class flow degraded to %.1f Gbps by storage congestion", g)
	}
}
