package cc

import (
	"testing"

	"rpingmesh/internal/ecmp"
	"rpingmesh/internal/sim"
	"rpingmesh/internal/simnet"
	"rpingmesh/internal/topo"
)

func TestDCQCNDecreaseOnECN(t *testing.T) {
	f := DCQCN{}.NewFlowState(400)
	r := f.Update(400, true, 0.001)
	// First mark with alpha=1 halves the rate.
	if r != 200 {
		t.Fatalf("first cut = %v, want 200", r)
	}
	r2 := f.Update(r, true, 0.001)
	if r2 >= r {
		t.Fatalf("second cut did not decrease: %v -> %v", r, r2)
	}
}

func TestDCQCNRecovery(t *testing.T) {
	f := DCQCN{}.NewFlowState(400)
	r := f.Update(400, true, 0.001) // cut to 200, target 400
	for i := 0; i < 50; i++ {
		r = f.Update(r, false, 0.001)
	}
	if r < 390 {
		t.Fatalf("rate after long calm = %v, want near line rate", r)
	}
	if r > 400 {
		t.Fatalf("rate %v exceeds line rate", r)
	}
}

func TestDCQCNAlphaDecays(t *testing.T) {
	f := DCQCN{}.NewFlowState(400).(*dcqcnFlow)
	f.Update(400, true, 0.001)
	a1 := f.alpha
	for i := 0; i < 100; i++ {
		f.Update(200, false, 0.001)
	}
	if f.alpha >= a1/10 {
		t.Fatalf("alpha did not decay: %v -> %v", a1, f.alpha)
	}
	// A mark after a long calm period cuts much less than a fresh flow's.
	r := f.Update(400, true, 0.001)
	if r < 350 {
		t.Fatalf("low-alpha cut too deep: %v", r)
	}
}

func TestImprovedGentleCut(t *testing.T) {
	f := Improved{}.NewFlowState(400)
	r := f.Update(400, true, 0.001)
	if r != 360 {
		t.Fatalf("improved cut = %v, want 360 (0.9x)", r)
	}
	r = f.Update(r, false, 0.001)
	if r != 361.2 {
		t.Fatalf("improved climb = %v, want 361.2 (+0.3%% line)", r)
	}
}

func TestNone(t *testing.T) {
	f := None{}.NewFlowState(400)
	if f.Update(1, true, 0.001) != 400 {
		t.Fatal("None must ignore congestion")
	}
}

func TestClampFloor(t *testing.T) {
	f := Improved{Decrease: 0.5}.NewFlowState(400)
	r := 400.0
	for i := 0; i < 100; i++ {
		r = f.Update(r, true, 0.001)
	}
	if r < 0.1 {
		t.Fatalf("rate fell below floor: %v", r)
	}
}

func TestDefaultsApplied(t *testing.T) {
	d := DCQCN{G: -1, AIRateGbps: -1, RecoveryPeriods: -1}.NewFlowState(100).(*dcqcnFlow)
	if d.g != 1.0/16 || d.ai != 4 || d.rp != 3 {
		t.Fatalf("defaults: %+v", d)
	}
	i := Improved{Decrease: 2, Increase: -1}.NewFlowState(100).(*improvedFlow)
	if i.dec != 0.9 || i.inc != 0.003 {
		t.Fatalf("defaults: %+v", i)
	}
}

// End-to-end comparison on a shared bottleneck: both algorithms must keep
// aggregate throughput near capacity, and Improved must hold a shallower
// queue (the paper's Fig 11 right: lower tail RTT, higher throughput).
func TestIncastComparison(t *testing.T) {
	run := func(ccImpl simnet.CongestionControl) (thr float64, maxQ float64) {
		tp, err := topo.BuildClos(topo.ClosConfig{Pods: 1, ToRsPerPod: 2, AggsPerPod: 2, Spines: 2, HostsPerToR: 4, RNICsPerHost: 1})
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.New(3)
		net := simnet.New(eng, tp, simnet.Config{CC: ccImpl})
		dst := tp.RNICsUnderToR("tor-0-1")[0]
		srcs := tp.RNICsUnderToR("tor-0-0")
		var flows []*simnet.Flow
		for i, s := range srcs {
			f, err := net.AddFlow(simnet.FlowSpec{
				Src: s, Dst: dst,
				Tuple:      ecmp.RoCETuple(tp.RNICs[s].IP, tp.RNICs[dst].IP, uint16(4000+i)),
				DemandGbps: 400,
			})
			if err != nil {
				t.Fatal(err)
			}
			flows = append(flows, f)
		}
		downlink := tp.LinkBetween(tp.RNICs[dst].ToR, dst)
		warm := 200 * sim.Millisecond
		eng.RunUntil(warm)
		// Measure for 300ms.
		samples := 0
		for eng.Now() < warm+300*sim.Millisecond {
			eng.RunUntil(eng.Now() + 5*sim.Millisecond)
			sum := 0.0
			for _, f := range flows {
				sum += f.Rate()
			}
			thr += sum
			if q := net.QueueBytesOn(downlink); q > maxQ {
				maxQ = q
			}
			samples++
		}
		return thr / float64(samples), maxQ
	}

	thrD, qD := run(DCQCN{})
	thrI, qI := run(Improved{})

	if thrD < 200 || thrI < 200 {
		t.Fatalf("aggregate throughput collapsed: dcqcn=%v improved=%v", thrD, thrI)
	}
	if thrD > 401 || thrI > 401 {
		t.Fatalf("throughput exceeds capacity: dcqcn=%v improved=%v", thrD, thrI)
	}
	if qI >= qD {
		t.Fatalf("improved CC queue (%v) not shallower than DCQCN (%v)", qI, qD)
	}
	if thrI < thrD*0.95 {
		t.Fatalf("improved CC throughput (%v) well below DCQCN (%v)", thrI, thrD)
	}
}

// Without CC, queues pin at the PFC ceiling; with DCQCN they must stay
// strictly below it.
func TestCCBoundsQueues(t *testing.T) {
	run := func(ccImpl simnet.CongestionControl) float64 {
		tp, _ := topo.BuildClos(topo.ClosConfig{Pods: 1, ToRsPerPod: 2, AggsPerPod: 1, Spines: 1, HostsPerToR: 2, RNICsPerHost: 1})
		eng := sim.New(3)
		net := simnet.New(eng, tp, simnet.Config{CC: ccImpl, MaxQueueBytes: 8 << 20})
		dst := tp.RNICsUnderToR("tor-0-1")[0]
		for i, s := range tp.RNICsUnderToR("tor-0-0") {
			if _, err := net.AddFlow(simnet.FlowSpec{
				Src: s, Dst: dst,
				Tuple:      ecmp.RoCETuple(tp.RNICs[s].IP, tp.RNICs[dst].IP, uint16(i+1)),
				DemandGbps: 400,
			}); err != nil {
				t.Fatal(err)
			}
		}
		eng.RunUntil(500 * sim.Millisecond)
		return net.QueueBytesOn(tp.LinkBetween(tp.RNICs[dst].ToR, dst))
	}
	qNone := run(nil)
	qDCQCN := run(DCQCN{})
	if qNone < float64(8<<20) {
		t.Fatalf("no-CC queue = %v, expected pinned at ceiling", qNone)
	}
	if qDCQCN >= qNone {
		t.Fatalf("DCQCN queue (%v) not below no-CC ceiling (%v)", qDCQCN, qNone)
	}
}

func BenchmarkDCQCNUpdate(b *testing.B) {
	f := DCQCN{}.NewFlowState(400)
	r := 400.0
	for i := 0; i < b.N; i++ {
		r = f.Update(r, i%7 == 0, 0.001)
	}
}

// Two DCQCN flows sharing one bottleneck converge to a fair-ish split.
func TestDCQCNFairness(t *testing.T) {
	tp, err := topo.BuildClos(topo.ClosConfig{Pods: 1, ToRsPerPod: 2, AggsPerPod: 1, Spines: 1, HostsPerToR: 3, RNICsPerHost: 1})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New(8)
	net := simnet.New(eng, tp, simnet.Config{CC: DCQCN{}})
	dst := tp.RNICsUnderToR("tor-0-1")[0]
	srcs := tp.RNICsUnderToR("tor-0-0")[:2]
	var flows []*simnet.Flow
	for i, s := range srcs {
		f, err := net.AddFlow(simnet.FlowSpec{
			Src: s, Dst: dst,
			Tuple:      ecmp.RoCETuple(tp.RNICs[s].IP, tp.RNICs[dst].IP, uint16(6000+i)),
			DemandGbps: 400,
		})
		if err != nil {
			t.Fatal(err)
		}
		flows = append(flows, f)
	}
	eng.RunUntil(300 * sim.Millisecond) // converge
	// Average over a measurement window.
	sum := make([]float64, 2)
	samples := 0
	for eng.Now() < 800*sim.Millisecond {
		eng.RunUntil(eng.Now() + 10*sim.Millisecond)
		for i, f := range flows {
			sum[i] += f.Rate()
		}
		samples++
	}
	a := sum[0] / float64(samples)
	b := sum[1] / float64(samples)
	ratio := a / b
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("unfair long-run split: %.1f vs %.1f Gbps", a, b)
	}
	if a+b < 250 {
		t.Fatalf("aggregate %.1f Gbps badly underutilizes the 400G bottleneck", a+b)
	}
}

// The improved CC's escalating cut resets after a calm period.
func TestImprovedEscalationResets(t *testing.T) {
	f := Improved{}.NewFlowState(400).(*improvedFlow)
	r := f.Update(400, true, 0.001) // 0.9x
	first := 400 - r
	r2 := f.Update(r, true, 0.001) // 0.85x — deeper
	second := r - r2
	if second/r <= first/400 {
		t.Fatalf("cut did not escalate: %.1f%% then %.1f%%", 100*first/400, 100*second/r)
	}
	_ = f.Update(r2, false, 0.001) // calm resets the streak
	r3 := f.Update(400, true, 0.001)
	if 400-r3 != first {
		t.Fatalf("escalation not reset after calm: cut %.1f, want %.1f", 400-r3, first)
	}
}

// The escalating cut floors at 0.5x.
func TestImprovedCutFloor(t *testing.T) {
	f := Improved{}.NewFlowState(400).(*improvedFlow)
	r := 400.0
	prev := r
	for i := 0; i < 30; i++ {
		r = f.Update(r, true, 0.001)
		if r < prev*0.5-1e-9 {
			t.Fatalf("cut below floor: %v -> %v", prev, r)
		}
		prev = r
	}
}
