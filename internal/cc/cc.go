// Package cc implements the congestion-control algorithms compared in the
// paper's Figure 11 (right): DCQCN, the default on commodity RNICs, and a
// faster-reacting "improved" algorithm standing in for the authors'
// self-developed one. Both plug into simnet's fluid flows via the
// simnet.CongestionControl interface.
//
// The fluid adaptation keeps DCQCN's defining dynamics — an EWMA congestion
// estimate α, multiplicative decrease R(1-α/2) on marks, fast recovery
// toward the pre-cut target followed by additive increase — at the
// granularity of the simulator tick rather than per-ACK.
package cc

import "rpingmesh/internal/simnet"

// DCQCN is the classic RNIC congestion control (Zhu et al., SIGCOMM'15).
type DCQCN struct {
	// G is the α EWMA gain. Defaults to 1/16.
	G float64
	// AIRateGbps is the additive-increase step per update period.
	// Defaults to 4 Gbps (scaled for 400G fabrics).
	AIRateGbps float64
	// RecoveryPeriods is the number of no-mark periods of fast recovery
	// before additive increase starts. Defaults to 3.
	RecoveryPeriods int
}

// NewFlowState implements simnet.CongestionControl.
func (d DCQCN) NewFlowState(lineRateGbps float64) simnet.FlowCC {
	g := d.G
	if g <= 0 {
		g = 1.0 / 16
	}
	ai := d.AIRateGbps
	if ai <= 0 {
		ai = 4
	}
	rp := d.RecoveryPeriods
	if rp <= 0 {
		rp = 3
	}
	return &dcqcnFlow{line: lineRateGbps, g: g, ai: ai, rp: rp, alpha: 1, target: lineRateGbps}
}

type dcqcnFlow struct {
	line   float64
	g      float64
	ai     float64
	rp     int
	alpha  float64
	target float64 // RT: rate before the last cut
	calm   int     // consecutive unmarked periods
}

// Update implements simnet.FlowCC.
func (f *dcqcnFlow) Update(rate float64, ecn bool, dt float64) float64 {
	if ecn {
		f.target = rate
		rate = rate * (1 - f.alpha/2)
		f.alpha = (1-f.g)*f.alpha + f.g
		f.calm = 0
	} else {
		f.alpha = (1 - f.g) * f.alpha
		f.calm++
		if f.calm <= f.rp {
			// Fast recovery: halve the distance to the pre-cut target.
			rate = (rate + f.target) / 2
		} else {
			// Additive increase.
			f.target += f.ai
			if f.target > f.line {
				f.target = f.line
			}
			rate = (rate + f.target) / 2
		}
	}
	return clamp(rate, 0.1, f.line)
}

// Improved is the stand-in for the paper's self-developed algorithm
// (§7.3): it cuts gently but immediately on every marked period instead of
// carrying a heavy α, and climbs back with a small proportional step, so
// queues stay shallow (low tail RTT) while average throughput stays high.
type Improved struct {
	// Decrease is the per-marked-period multiplicative cut. Defaults 0.9.
	Decrease float64
	// Increase is the per-calm-period rate gain as a fraction of line
	// rate. Defaults to 0.02.
	Increase float64
}

// NewFlowState implements simnet.CongestionControl.
func (i Improved) NewFlowState(lineRateGbps float64) simnet.FlowCC {
	dec := i.Decrease
	if dec <= 0 || dec >= 1 {
		dec = 0.9
	}
	inc := i.Increase
	if inc <= 0 {
		inc = 0.003
	}
	return &improvedFlow{line: lineRateGbps, dec: dec, inc: inc}
}

type improvedFlow struct {
	line   float64
	dec    float64
	inc    float64
	marked int // consecutive marked periods
}

// Update implements simnet.FlowCC. The cut escalates while marks persist
// (0.9×, 0.85×, 0.8×, … floor 0.5×): onset bursts — every flow jumping to
// line rate at the start of a communication phase — drain in a few
// periods instead of lingering as tail-RTT spikes.
func (f *improvedFlow) Update(rate float64, ecn bool, dt float64) float64 {
	if ecn {
		cut := f.dec - 0.05*float64(f.marked)
		if cut < 0.5 {
			cut = 0.5
		}
		f.marked++
		rate *= cut
	} else {
		f.marked = 0
		rate += f.inc * f.line
	}
	return clamp(rate, 0.1, f.line)
}

// None disables congestion control: flows always offer their full demand.
// Queues then pin at the PFC ceiling under overload — the behaviour of a
// misconfigured cluster.
type None struct{}

// NewFlowState implements simnet.CongestionControl.
func (None) NewFlowState(lineRateGbps float64) simnet.FlowCC { return noneFlow{line: lineRateGbps} }

type noneFlow struct{ line float64 }

func (f noneFlow) Update(rate float64, ecn bool, dt float64) float64 { return f.line }

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
