// Package qos models the per-priority QoS machinery of a lossless RoCE
// fabric — the layer real deployments configure with DSCP→traffic-class
// maps, per-priority PFC thresholds and buffer headroom, and a dedicated
// priority for CNP congestion-notification packets.
//
// The model follows the OMNeT++ RoCEv2 PFC/RCM semantics (PAPERS.md):
// every directed link (a Port here) carries Classes independent
// byte-bounded queues. When a class queue crosses its XOff threshold the
// port starts asserting PFC pause frames upstream for that class and
// keeps asserting until the queue drains below XOn; a paused upstream
// port stops transmitting the class entirely (lossless hold, not drop),
// absorbing in-flight bytes in the class's headroom. Pause therefore
// propagates hop by hop — a storm on the storage class can starve the
// whole storage priority fleet-wide while the GPU class next to it never
// queues — which is exactly the fault surface R-Pingmesh's hardest
// diagnoses (PFC storms, Fig 8's pause tails) live on.
//
// The package is pure state + policy: internal/simnet threads it through
// the fluid/discrete data plane, internal/cc sees its effect as
// class-dependent CNP feedback delay. A Config with Classes <= 1 is the
// disabled state — simnet then takes its classic single-queue path,
// bit-identical to a build without this package.
package qos

import (
	"fmt"

	"rpingmesh/internal/sim"
)

// MaxClasses bounds the per-link queue count (hardware PFC has 8
// priorities).
const MaxClasses = 8

// ClassConfig is one traffic class's queue policy on every port.
type ClassConfig struct {
	// MaxBytes bounds the class queue (its switch-buffer share).
	MaxBytes float64
	// XOffBytes is the PFC pause-assert threshold: at or above it the
	// port sends pause frames upstream for this class.
	XOffBytes float64
	// XOnBytes is the resume threshold: pause stays asserted until the
	// queue drains below it (hysteresis).
	XOnBytes float64
	// HeadroomBytes absorbs the in-flight bytes that keep arriving after
	// pause is asserted. A correctly sized headroom makes the class
	// lossless; a misconfigured port (simnet's badHeadroom) loses it.
	HeadroomBytes float64
	// ECNBytes is the per-class ECN marking threshold — well below XOff,
	// so congestion control reacts before PFC ever engages.
	ECNBytes float64
}

// Config is the fabric-wide QoS policy. The zero value (Classes 0) and
// Classes 1 both mean "QoS disabled": one default class, the classic
// single-queue data plane.
type Config struct {
	// Classes is the number of traffic classes per link (2..MaxClasses
	// enables the per-priority model).
	Classes int
	// DSCPToClass maps each 6-bit DSCP value to a class index. Entries
	// at or above Classes are clamped to the top class.
	DSCPToClass [64]uint8
	// CNPClass is the priority CNP congestion-notification packets
	// travel on. 0 means the conventional default: the top class.
	CNPClass int
	// Class overrides per-class queue policy; missing entries (or zero
	// fields) take defaults derived from the link buffer size.
	Class []ClassConfig
}

// Enabled reports whether the per-priority model is on.
func (c Config) Enabled() bool { return c.Classes > 1 }

// Validate rejects configurations the resolver cannot clamp sensibly.
func (c Config) Validate() error {
	if c.Classes < 0 || c.Classes > MaxClasses {
		return fmt.Errorf("qos: Classes %d out of range [0,%d]", c.Classes, MaxClasses)
	}
	if c.CNPClass < 0 || (c.Enabled() && c.CNPClass >= c.Classes) {
		return fmt.Errorf("qos: CNPClass %d out of range [0,%d)", c.CNPClass, c.Classes)
	}
	if len(c.Class) > c.Classes {
		return fmt.Errorf("qos: %d class overrides for %d classes", len(c.Class), c.Classes)
	}
	return nil
}

// ClassOf maps a packet DSCP to its class index.
func (c Config) ClassOf(dscp uint8) int {
	if !c.Enabled() {
		return 0
	}
	cl := int(c.DSCPToClass[dscp&0x3f])
	if cl >= c.Classes {
		cl = c.Classes - 1
	}
	return cl
}

// ResolvedCNPClass is the CNP priority after default resolution.
func (c Config) ResolvedCNPClass() int {
	if !c.Enabled() {
		return 0
	}
	if c.CNPClass > 0 && c.CNPClass < c.Classes {
		return c.CNPClass
	}
	return c.Classes - 1
}

// Profile returns the conventional n-class deployment policy: DSCP d
// rides class d>>3 (the standard eight-DSCP-per-priority carve, clamped
// to the top class), and the top class doubles as the CNP priority —
// the shape host RoCE QoS guides configure.
func Profile(n int) Config {
	cfg := Config{Classes: n}
	if n <= 1 {
		return cfg
	}
	for d := 0; d < 64; d++ {
		cl := d >> 3
		if cl >= n {
			cl = n - 1
		}
		cfg.DSCPToClass[d] = uint8(cl)
	}
	cfg.CNPClass = n - 1
	return cfg
}

// Port is one directed link's per-class queue state.
type Port struct {
	// Bytes is the per-class queue depth.
	Bytes []float64
	// Ecn marks classes whose queue is past the ECN threshold.
	Ecn []bool
	// Asserting marks classes whose queue crossed XOff and has not yet
	// drained below XOn: this port is sending pause frames upstream.
	Asserting []bool
	// Paused marks classes this port may not transmit — some port at
	// the downstream device is asserting pause. Set by the fabric's
	// propagation pass each tick.
	Paused []bool
	// PauseWait is the modeled residual pause duration per paused class
	// (the downstream queue's drain-to-XOn time).
	PauseWait []sim.Time
	// Offered is the tick-scratch per-class offered load in Gbps.
	Offered []float64
	// HeadroomDropBytes counts fluid bytes lost to queues overrunning
	// cap+headroom — stays zero on a correctly configured fabric.
	HeadroomDropBytes []float64
}

// Total is the summed queue depth across classes.
func (p *Port) Total() float64 {
	t := 0.0
	for _, b := range p.Bytes {
		t += b
	}
	return t
}

// State is the runtime QoS state of one fabric: the resolved per-class
// parameters plus one Port per directed link, indexed by topo.LinkID.
type State struct {
	cfg    Config
	cnp    int
	params []ClassConfig
	Ports  []Port
}

// NewState resolves a Config against the fabric's per-link buffer size
// and ECN threshold and allocates per-port queue state.
func NewState(cfg Config, ports int, linkMaxBytes, ecnBytes float64) *State {
	n := cfg.Classes
	s := &State{cfg: cfg, cnp: cfg.ResolvedCNPClass(), params: make([]ClassConfig, n)}
	share := linkMaxBytes / float64(n)
	for c := 0; c < n; c++ {
		var o ClassConfig
		if c < len(cfg.Class) {
			o = cfg.Class[c]
		}
		p := ClassConfig{
			MaxBytes:      share,
			XOffBytes:     0.5 * share,
			XOnBytes:      0.25 * share,
			HeadroomBytes: 0.25 * share,
			ECNBytes:      min(ecnBytes, 0.25*share),
		}
		if o.MaxBytes > 0 {
			p.MaxBytes = o.MaxBytes
			p.XOffBytes = 0.5 * o.MaxBytes
			p.XOnBytes = 0.25 * o.MaxBytes
			p.HeadroomBytes = 0.25 * o.MaxBytes
			p.ECNBytes = min(ecnBytes, 0.25*o.MaxBytes)
		}
		if o.XOffBytes > 0 {
			p.XOffBytes = o.XOffBytes
		}
		if o.XOnBytes > 0 {
			p.XOnBytes = o.XOnBytes
		}
		if o.HeadroomBytes > 0 {
			p.HeadroomBytes = o.HeadroomBytes
		}
		if o.ECNBytes > 0 {
			p.ECNBytes = o.ECNBytes
		}
		s.params[c] = p
	}
	s.Ports = make([]Port, ports)
	for i := range s.Ports {
		s.Ports[i] = Port{
			Bytes:             make([]float64, n),
			Ecn:               make([]bool, n),
			Asserting:         make([]bool, n),
			Paused:            make([]bool, n),
			PauseWait:         make([]sim.Time, n),
			Offered:           make([]float64, n),
			HeadroomDropBytes: make([]float64, n),
		}
	}
	return s
}

// Classes is the resolved class count.
func (s *State) Classes() int { return s.cfg.Classes }

// CNPClass is the resolved CNP priority.
func (s *State) CNPClass() int { return s.cnp }

// Params returns a class's resolved queue policy.
func (s *State) Params(c int) ClassConfig { return s.params[c] }

// ClassOf maps a packet DSCP to its class.
func (s *State) ClassOf(dscp uint8) int { return s.cfg.ClassOf(dscp) }

// Remap rebinds one DSCP value to a different class mid-run — the
// mis-mapped-DSCP misconfiguration fault (a switch QoS policy pushed
// with the wrong map strands a service's traffic on the wrong queue).
func (s *State) Remap(dscp uint8, class int) {
	if class < 0 {
		class = 0
	}
	if class >= s.cfg.Classes {
		class = s.cfg.Classes - 1
	}
	s.cfg.DSCPToClass[dscp&0x3f] = uint8(class)
}

// Integrate adds delta queue bytes to a port's class, clamping at the
// class cap plus headroom and returning the bytes lost to overrun.
// badHeadroom removes the headroom allowance entirely (the #9
// misconfiguration: drops during heavy congestion).
func (s *State) Integrate(p *Port, c int, delta float64, badHeadroom bool) (dropped float64) {
	cap := s.params[c].MaxBytes + s.params[c].HeadroomBytes
	if badHeadroom {
		cap = s.params[c].MaxBytes
	}
	p.Bytes[c] += delta
	if p.Bytes[c] > cap {
		dropped = p.Bytes[c] - cap
		p.Bytes[c] = cap
		p.HeadroomDropBytes[c] += dropped
	}
	return dropped
}

// UpdateAssert applies the XOff/XOn pause hysteresis to every class of
// a port after queue integration.
func (s *State) UpdateAssert(p *Port) {
	for c := range p.Bytes {
		switch {
		case !p.Asserting[c] && p.Bytes[c] >= s.params[c].XOffBytes:
			p.Asserting[c] = true
		case p.Asserting[c] && p.Bytes[c] < s.params[c].XOnBytes:
			p.Asserting[c] = false
		}
	}
}

// DrainWait is the time a port's class queue needs to drain below XOn
// at the given line rate — the modeled pause duration upstream ports
// inherit while this port asserts.
func (s *State) DrainWait(p *Port, c int, capacityGbps float64) sim.Time {
	over := p.Bytes[c] - s.params[c].XOnBytes
	if over <= 0 || capacityGbps <= 0 {
		return 0
	}
	return sim.Time(over * 8 / (capacityGbps * 1e9) * 1e9)
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
