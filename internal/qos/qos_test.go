package qos

import "testing"

func TestProfileMapping(t *testing.T) {
	cfg := Profile(4)
	if !cfg.Enabled() {
		t.Fatal("Profile(4) should enable QoS")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Standard carve: eight DSCP values per priority, clamped at the top.
	cases := []struct {
		dscp uint8
		want int
	}{{0, 0}, {7, 0}, {8, 1}, {16, 2}, {24, 3}, {63, 3}}
	for _, c := range cases {
		if got := cfg.ClassOf(c.dscp); got != c.want {
			t.Errorf("ClassOf(%d) = %d, want %d", c.dscp, got, c.want)
		}
	}
	if cfg.ResolvedCNPClass() != 3 {
		t.Errorf("CNP class = %d, want top class 3", cfg.ResolvedCNPClass())
	}
}

func TestDisabledConfigIsClassZero(t *testing.T) {
	var cfg Config
	if cfg.Enabled() {
		t.Fatal("zero Config must be disabled")
	}
	for d := 0; d < 64; d++ {
		if cfg.ClassOf(uint8(d)) != 0 {
			t.Fatalf("disabled ClassOf(%d) != 0", d)
		}
	}
	if cfg.ResolvedCNPClass() != 0 {
		t.Fatal("disabled CNP class != 0")
	}
	if cfg1 := Profile(1); cfg1.Enabled() {
		t.Fatal("Profile(1) must be disabled")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	if err := (Config{Classes: MaxClasses + 1}).Validate(); err == nil {
		t.Error("Classes > MaxClasses accepted")
	}
	if err := (Config{Classes: 4, CNPClass: 4}).Validate(); err == nil {
		t.Error("CNPClass == Classes accepted")
	}
	if err := (Config{Classes: 2, Class: make([]ClassConfig, 3)}).Validate(); err == nil {
		t.Error("more overrides than classes accepted")
	}
}

func TestNewStateDefaults(t *testing.T) {
	const linkMax, ecn = 8 << 20, 1 << 20
	s := NewState(Profile(4), 10, linkMax, ecn)
	if got := len(s.Ports); got != 10 {
		t.Fatalf("ports = %d, want 10", got)
	}
	share := float64(linkMax) / 4
	p := s.Params(0)
	if p.MaxBytes != share || p.XOffBytes != 0.5*share || p.XOnBytes != 0.25*share || p.HeadroomBytes != 0.25*share {
		t.Errorf("unexpected default params: %+v", p)
	}
	// ECN must engage below XOff so CC reacts before PFC.
	if p.ECNBytes >= p.XOffBytes {
		t.Errorf("ECN %v >= XOff %v", p.ECNBytes, p.XOffBytes)
	}
}

func TestPauseHysteresis(t *testing.T) {
	s := NewState(Profile(2), 1, 8<<20, 1<<20)
	p := &s.Ports[0]
	prm := s.Params(0)

	s.Integrate(p, 0, prm.XOffBytes-1, false)
	s.UpdateAssert(p)
	if p.Asserting[0] {
		t.Fatal("asserted below XOff")
	}
	s.Integrate(p, 0, 2, false)
	s.UpdateAssert(p)
	if !p.Asserting[0] {
		t.Fatal("did not assert at XOff")
	}
	// Draining below XOff but above XOn must keep pause asserted.
	p.Bytes[0] = (prm.XOffBytes + prm.XOnBytes) / 2
	s.UpdateAssert(p)
	if !p.Asserting[0] {
		t.Fatal("deasserted between XOn and XOff")
	}
	p.Bytes[0] = prm.XOnBytes - 1
	s.UpdateAssert(p)
	if p.Asserting[0] {
		t.Fatal("still asserted below XOn")
	}
	if p.Asserting[1] {
		t.Fatal("class 1 asserted without traffic")
	}
}

func TestIntegrateHeadroomClamp(t *testing.T) {
	s := NewState(Profile(2), 1, 8<<20, 1<<20)
	p := &s.Ports[0]
	prm := s.Params(0)
	cap := prm.MaxBytes + prm.HeadroomBytes

	if dropped := s.Integrate(p, 0, cap+100, false); dropped != 100 {
		t.Fatalf("dropped = %v, want 100", dropped)
	}
	if p.Bytes[0] != cap {
		t.Fatalf("bytes = %v, want clamp at %v", p.Bytes[0], cap)
	}
	// badHeadroom removes the allowance: same arrival loses headroom worth.
	p2 := &s.Ports[0]
	p2.Bytes[0] = 0
	p2.HeadroomDropBytes[0] = 0
	if dropped := s.Integrate(p2, 0, cap+100, true); dropped != prm.HeadroomBytes+100 {
		t.Fatalf("badHeadroom dropped = %v, want %v", dropped, prm.HeadroomBytes+100)
	}
	if p2.HeadroomDropBytes[0] != prm.HeadroomBytes+100 {
		t.Fatalf("drop counter = %v", p2.HeadroomDropBytes[0])
	}
}

func TestDrainWait(t *testing.T) {
	s := NewState(Profile(2), 1, 8<<20, 1<<20)
	p := &s.Ports[0]
	prm := s.Params(0)
	if w := s.DrainWait(p, 0, 100); w != 0 {
		t.Fatalf("empty queue drain wait = %v", w)
	}
	p.Bytes[0] = prm.XOnBytes + 100e9/8*1e-6 // 1µs of line rate over XOn
	w := s.DrainWait(p, 0, 100)
	if w < 900 || w > 1100 { // ~1000ns
		t.Fatalf("drain wait = %vns, want ~1000ns", w)
	}
}

func TestRemap(t *testing.T) {
	s := NewState(Profile(4), 1, 8<<20, 1<<20)
	if s.ClassOf(16) != 2 {
		t.Fatal("precondition: DSCP 16 on class 2")
	}
	s.Remap(16, 0)
	if s.ClassOf(16) != 0 {
		t.Fatal("Remap(16, 0) did not take")
	}
	s.Remap(16, 99) // clamped to top class
	if s.ClassOf(16) != 3 {
		t.Fatal("Remap clamp failed")
	}
}
