package service_test

import (
	"testing"

	"rpingmesh/internal/service"
	"rpingmesh/internal/sim"
)

// Reroute (§7.3) changes the connection's ECMP path, keeps the job
// healthy, and flows data over the new path.
func TestRerouteChangesPath(t *testing.T) {
	c := cluster(t, 21)
	job, err := c.NewJob(service.Config{
		Pattern:         service.AllReduce,
		ComputeTime:     500 * sim.Millisecond,
		VolumePerFlowGB: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(); err != nil {
		t.Fatal(err)
	}
	c.Run(5 * sim.Second)

	// Find a cross-ToR connection (its path has ECMP choice).
	conn := -1
	for i := 0; i < job.Connections(); i++ {
		if len(job.ConnPath(i)) > 2 {
			conn = i
			break
		}
	}
	if conn < 0 {
		t.Fatal("no cross-ToR connection in the ring")
	}
	orig := job.ConnPath(conn)
	changed := false
	for port := uint16(2000); port < 2500; port++ {
		if err := job.Reroute(conn, port); err != nil {
			t.Fatal(err)
		}
		now := job.ConnPath(conn)
		if len(now) != len(orig) {
			t.Fatalf("reroute changed path length: %d -> %d", len(orig), len(now))
		}
		for i := range now {
			if now[i] != orig[i] {
				changed = true
			}
		}
		if changed {
			break
		}
	}
	if !changed {
		t.Fatal("no source port changed the path")
	}
	// Endpoints unchanged.
	now := job.ConnPath(conn)
	if c.Topo.Links[now[0]].From != c.Topo.Links[orig[0]].From ||
		c.Topo.Links[now[len(now)-1]].To != c.Topo.Links[orig[len(orig)-1]].To {
		t.Fatal("reroute changed the connection's endpoints")
	}
	// Training continues on the new path.
	before := job.Iterations()
	c.Run(15 * sim.Second)
	if job.Iterations() <= before {
		t.Fatal("job stalled after reroute")
	}
	if job.Failed() {
		t.Fatal("job failed after reroute")
	}
}

func TestRerouteValidation(t *testing.T) {
	c := cluster(t, 22)
	job, err := c.NewJob(service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(); err != nil {
		t.Fatal(err)
	}
	if err := job.Reroute(-1, 1000); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := job.Reroute(job.Connections(), 1000); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if job.ConnPath(-1) != nil || job.ConnPath(job.Connections()) != nil {
		t.Fatal("ConnPath out-of-range not nil")
	}
}

// Agents follow a reroute: the old tuple leaves the service pinglist and
// the new one arrives (via the verbs tracer's destroy+modify sequence).
func TestAgentsFollowReroute(t *testing.T) {
	c := cluster(t, 23)
	c.StartAgents()
	c.Run(5 * sim.Second)
	job, err := c.NewJob(service.Config{Pattern: service.AllReduce, ComputeTime: sim.Second, VolumePerFlowGB: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(); err != nil {
		t.Fatal(err)
	}
	countTargets := func() int {
		total := 0
		for _, hid := range c.Topo.AllHosts() {
			for _, dev := range c.Topo.Hosts[hid].RNICs {
				total += c.Agent(hid).ServiceTargets(dev)
			}
		}
		return total
	}
	before := countTargets()
	if before != job.Connections() {
		t.Fatalf("targets before reroute = %d, want %d", before, job.Connections())
	}
	for i := 0; i < job.Connections(); i++ {
		if err := job.Reroute(i, uint16(4000+i)); err != nil {
			t.Fatal(err)
		}
	}
	after := countTargets()
	if after != job.Connections() {
		t.Fatalf("targets after reroute = %d, want %d (stale tuples must be removed)", after, job.Connections())
	}
	c.Run(25 * sim.Second)
	rep, _ := c.Analyzer.LastReport()
	if rep.Service.Probes == 0 {
		t.Fatal("no service probes after reroute")
	}
}
