// Package service models the DML workloads that R-Pingmesh is deployed
// to protect (§2): iterative training that alternates compute and
// communication phases, synchronizing gradients over RC connections with
// AllReduce (ring) or All2All (full-mesh) patterns, with barrel-effect
// throughput, periodic TCP checkpointing that idles the RoCE network and
// loads the CPU, and failure when a connection stays broken.
//
// Connections are established through the verbs stacks — so the Agents'
// service-flow monitor sees the modify_qp/destroy_qp calls — and carry
// fluid flows in simnet with the same 5-tuples, so probes with copied
// tuples share the service's ECMP paths.
package service

import (
	"fmt"
	"math/rand"

	"rpingmesh/internal/ecmp"
	"rpingmesh/internal/metrics"
	"rpingmesh/internal/rnic"
	"rpingmesh/internal/sim"
	"rpingmesh/internal/simnet"
	"rpingmesh/internal/topo"
	"rpingmesh/internal/verbs"
)

// Pattern is the collective-communication shape.
type Pattern int

const (
	// AllReduce is a ring: host i talks to host i+1 (mod n), NIC by NIC.
	// Light congestion.
	AllReduce Pattern = iota
	// All2All connects every host pair (NIC-index to NIC-index). Heavy
	// congestion from incast and hash collisions.
	All2All
)

func (p Pattern) String() string {
	if p == All2All {
		return "all2all"
	}
	return "allreduce"
}

// Participant is one host in the job.
type Participant struct {
	Stack   *verbs.Stack
	Devices []*rnic.Device
}

// Config parameterizes a training job.
type Config struct {
	Pattern Pattern
	// ComputeTime is the per-iteration compute phase at factor 1.0.
	// Defaults to 2 s ("each cycle takes only a few seconds", §2.2).
	ComputeTime sim.Time
	// VolumePerFlowGB is the data each connection must move per
	// iteration. Defaults to 20 GB (~0.4 s at 400 G).
	VolumePerFlowGB float64
	// DemandGbps is the per-flow offered load during communication.
	// Defaults to 400.
	DemandGbps float64
	// CheckpointEvery counts iterations between checkpoints; 0 disables.
	CheckpointEvery int
	// CheckpointDuration is the TCP-upload phase length (network idle,
	// CPU busy). Defaults to 20 s.
	CheckpointDuration sim.Time
	// CheckpointLoad is the host CPU load during checkpoints (TCP is CPU
	// intensive, §2.3). Defaults to 0.95.
	CheckpointLoad float64
	// StallFailAfter breaks the job if communication cannot finish for
	// this long (the RC retry budget exhausting, §7.1). Defaults 2 min.
	StallFailAfter sim.Time
	// PerfSampleInterval is the throughput sampling period. Default 5 s.
	PerfSampleInterval sim.Time
	// Seed salts the connection source ports.
	Seed int64
}

func (c *Config) setDefaults() {
	if c.ComputeTime <= 0 {
		c.ComputeTime = 2 * sim.Second
	}
	if c.VolumePerFlowGB <= 0 {
		c.VolumePerFlowGB = 20
	}
	if c.DemandGbps <= 0 {
		c.DemandGbps = 400
	}
	if c.CheckpointDuration <= 0 {
		c.CheckpointDuration = 20 * sim.Second
	}
	if c.CheckpointLoad <= 0 {
		c.CheckpointLoad = 0.95
	}
	if c.StallFailAfter <= 0 {
		c.StallFailAfter = 2 * sim.Minute
	}
	if c.PerfSampleInterval <= 0 {
		c.PerfSampleInterval = 5 * sim.Second
	}
}

type phase int

const (
	phaseIdle phase = iota
	phaseCompute
	phaseComm
	phaseCheckpoint
	phaseFailed
	phaseStopped
)

// conn is one RC connection + its fluid flow.
type conn struct {
	srcPart     *Participant
	srcDev      *rnic.Device
	dstDev      *rnic.Device
	dstQPN      rnic.QPN
	qp          *rnic.QP
	flow        *simnet.Flow
	transferred float64 // GB moved this iteration
}

// Job is a running training task.
type Job struct {
	eng   *sim.Engine
	net   *simnet.Net
	parts []Participant
	cfg   Config
	rng   *rand.Rand

	conns []*conn
	phase phase

	iter          int
	iterStart     sim.Time
	commStart     sim.Time
	lastTotal     float64 // GB at last perf sample
	totalMoved    float64
	computeFactor map[topo.HostID]float64

	// Throughput is the sampled aggregate goodput in Gbps (the "average
	// training throughput" of Fig 1/Fig 5a).
	Throughput metrics.Series

	// OnPerfSample, if set, receives every throughput sample (wired to
	// Analyzer.ObserveServicePerf).
	OnPerfSample func(gbps float64)

	perfTicker *sim.Ticker
	iterEvent  sim.Handle
	commTicker *sim.Ticker
}

// NewJob builds (but does not start) a job across the participants.
func NewJob(eng *sim.Engine, net *simnet.Net, parts []Participant, cfg Config) (*Job, error) {
	cfg.setDefaults()
	if len(parts) < 2 {
		return nil, fmt.Errorf("service: need at least 2 participants, got %d", len(parts))
	}
	j := &Job{
		eng:           eng,
		net:           net,
		parts:         parts,
		cfg:           cfg,
		rng:           rand.New(rand.NewSource(cfg.Seed + 7)),
		computeFactor: make(map[topo.HostID]float64),
		Throughput:    metrics.Series{Name: "training-throughput", Unit: "Gbps"},
	}
	return j, nil
}

// Iterations returns the number of completed iterations.
func (j *Job) Iterations() int { return j.iter }

// Failed reports whether the job died (broken connection past the stall
// budget — the paper's task failure).
func (j *Job) Failed() bool { return j.phase == phaseFailed }

// Running reports whether the job is live.
func (j *Job) Running() bool {
	return j.phase == phaseCompute || j.phase == phaseComm || j.phase == phaseCheckpoint
}

// SetComputeFactor slows (factor > 1) or speeds a host's compute phase —
// GPU underclocking and the Fig-9 training-code bug are modeled this way.
func (j *Job) SetComputeFactor(h topo.HostID, f float64) {
	if f <= 0 {
		f = 1
	}
	j.computeFactor[h] = f
}

// Connections returns the number of live connections.
func (j *Job) Connections() int { return len(j.conns) }

// FlowPaths returns the pinned ECMP path of every live connection, in
// connection order (experiments use these to place faults on the service
// network deliberately).
func (j *Job) FlowPaths() [][]topo.LinkID {
	out := make([][]topo.LinkID, len(j.conns))
	for i, c := range j.conns {
		out[i] = append([]topo.LinkID(nil), c.flow.Path...)
	}
	return out
}

// Start establishes all connections and begins the first iteration.
func (j *Job) Start() error {
	if j.phase != phaseIdle {
		return fmt.Errorf("service: job already started")
	}
	if err := j.connectAll(); err != nil {
		j.teardown()
		return err
	}
	j.perfTicker = j.eng.Every(j.cfg.PerfSampleInterval, j.cfg.PerfSampleInterval, j.samplePerf)
	j.iterStart = j.eng.Now()
	j.beginCompute()
	return nil
}

// Stop tears the job down cleanly (training complete).
func (j *Job) Stop() {
	if j.phase == phaseStopped {
		return
	}
	j.phase = phaseStopped
	j.teardown()
}

func (j *Job) teardown() {
	if j.perfTicker != nil {
		j.perfTicker.Stop()
	}
	if j.commTicker != nil {
		j.commTicker.Stop()
	}
	j.iterEvent.Cancel()
	for _, c := range j.conns {
		j.net.RemoveFlow(c.flow.ID)
		c.srcPart.Stack.DestroyQP(c.srcDev, c.qp)
	}
	j.conns = nil
}

// connectAll builds the communication pattern's RC connections.
func (j *Job) connectAll() error {
	type pair struct{ si, di int }
	var pairs []pair
	n := len(j.parts)
	switch j.cfg.Pattern {
	case AllReduce:
		for i := 0; i < n; i++ {
			pairs = append(pairs, pair{i, (i + 1) % n})
		}
	case All2All:
		for i := 0; i < n; i++ {
			for k := 0; k < n; k++ {
				if i != k {
					pairs = append(pairs, pair{i, k})
				}
			}
		}
	default:
		return fmt.Errorf("service: unknown pattern %v", j.cfg.Pattern)
	}
	for _, p := range pairs {
		src, dst := &j.parts[p.si], &j.parts[p.di]
		nics := min(len(src.Devices), len(dst.Devices))
		for idx := 0; idx < nics; idx++ {
			if err := j.connectOne(src, src.Devices[idx], dst, dst.Devices[idx]); err != nil {
				return err
			}
		}
	}
	return nil
}

func (j *Job) connectOne(srcPart *Participant, srcDev *rnic.Device, dstPart *Participant, dstDev *rnic.Device) error {
	port := uint16(j.rng.Intn(60000-1024) + 1024)
	dstQP := dstPart.Stack.CreateQP(dstDev, rnic.RC)
	srcQP := srcPart.Stack.CreateQP(srcDev, rnic.RC)
	if err := srcPart.Stack.ModifyQPToRTS(srcDev, srcQP, port, dstDev.IP(), dstDev.GID(), dstQP.QPN()); err != nil {
		return err
	}
	flow, err := j.net.AddFlow(simnet.FlowSpec{
		Src: srcDev.ID(), Dst: dstDev.ID(),
		Tuple:      ecmp.RoCETuple(srcDev.IP(), dstDev.IP(), port),
		DemandGbps: 0, // idle until the first comm phase
	})
	if err != nil {
		srcPart.Stack.DestroyQP(srcDev, srcQP)
		return err
	}
	j.conns = append(j.conns, &conn{
		srcPart: srcPart, srcDev: srcDev,
		dstDev: dstDev, dstQPN: dstQP.QPN(),
		qp: srcQP, flow: flow,
	})
	return nil
}

// Reroute changes connection i's source port by re-issuing modify_qp —
// the paper's centralized load-balancing action (§7.3): ECMP re-hashes
// the flow onto a different parallel path, the verbs tracer tells the
// Agents, and service-tracing probes follow.
func (j *Job) Reroute(i int, newPort uint16) error {
	if i < 0 || i >= len(j.conns) {
		return fmt.Errorf("service: no connection %d", i)
	}
	c := j.conns[i]
	if err := c.srcPart.Stack.ModifyQPToRTS(c.srcDev, c.qp, newPort, c.dstDev.IP(), c.dstDev.GID(), c.dstQPN); err != nil {
		return err
	}
	return j.net.RerouteFlow(c.flow.ID, ecmp.RoCETuple(c.srcDev.IP(), c.dstDev.IP(), newPort))
}

// ConnPath returns connection i's current pinned path.
func (j *Job) ConnPath(i int) []topo.LinkID {
	if i < 0 || i >= len(j.conns) {
		return nil
	}
	return append([]topo.LinkID(nil), j.conns[i].flow.Path...)
}

// beginCompute starts a compute phase whose length is set by the slowest
// participant (barrel effect).
func (j *Job) beginCompute() {
	j.phase = phaseCompute
	dur := float64(j.cfg.ComputeTime)
	for _, p := range j.parts {
		if f, ok := j.computeFactor[p.Stack.Host().ID()]; ok && f > 1 {
			if d := float64(j.cfg.ComputeTime) * f; d > dur {
				dur = d
			}
		}
	}
	j.iterEvent = j.eng.After(sim.Time(dur), j.beginComm)
}

// beginComm opens the gradient-synchronization phase: all flows offer
// full demand until every connection has moved its volume.
func (j *Job) beginComm() {
	j.phase = phaseComm
	j.commStart = j.eng.Now()
	for _, c := range j.conns {
		c.transferred = 0
		j.net.SetFlowDemand(c.flow.ID, j.cfg.DemandGbps)
	}
	j.commTicker = j.eng.Every(50*sim.Millisecond, 50*sim.Millisecond, j.commTick)
}

func (j *Job) commTick() {
	if j.phase != phaseComm {
		return
	}
	const dt = 0.05 // seconds per tick
	done := true
	for _, c := range j.conns {
		if c.transferred < j.cfg.VolumePerFlowGB {
			moved := c.flow.Rate() * dt / 8 // Gbps -> GB
			c.transferred += moved
			j.totalMoved += moved
			if c.transferred < j.cfg.VolumePerFlowGB {
				done = false
			}
		}
	}
	if done {
		j.commTicker.Stop()
		j.endIteration()
		return
	}
	if j.eng.Now()-j.commStart > j.cfg.StallFailAfter {
		// Retransmission budget exhausted: connections break, the task
		// fails (§7.1 #1/#3/#4).
		j.phase = phaseFailed
		j.teardown()
	}
}

func (j *Job) endIteration() {
	j.iter++
	for _, c := range j.conns {
		j.net.SetFlowDemand(c.flow.ID, 0)
	}
	if j.cfg.CheckpointEvery > 0 && j.iter%j.cfg.CheckpointEvery == 0 {
		j.beginCheckpoint()
		return
	}
	j.iterStart = j.eng.Now()
	j.beginCompute()
}

// beginCheckpoint idles the RoCE network and loads every host's CPU with
// the TCP model upload (§2.3 case 2, Fig 5).
func (j *Job) beginCheckpoint() {
	j.phase = phaseCheckpoint
	restore := make([]float64, len(j.parts))
	for i, p := range j.parts {
		restore[i] = p.Stack.Host().Load()
		p.Stack.Host().SetLoad(j.cfg.CheckpointLoad)
	}
	j.iterEvent = j.eng.After(j.cfg.CheckpointDuration, func() {
		for i, p := range j.parts {
			p.Stack.Host().SetLoad(restore[i])
		}
		if j.phase == phaseCheckpoint {
			j.iterStart = j.eng.Now()
			j.beginCompute()
		}
	})
}

// samplePerf records the aggregate goodput over the last sample period.
func (j *Job) samplePerf() {
	dt := j.cfg.PerfSampleInterval.Seconds()
	gbps := (j.totalMoved - j.lastTotal) * 8 / dt
	j.lastTotal = j.totalMoved
	j.Throughput.Append(j.eng.Now().Seconds(), gbps)
	if j.OnPerfSample != nil {
		j.OnPerfSample(gbps)
	}
}
