package service_test

import (
	"testing"

	"rpingmesh/internal/core"
	"rpingmesh/internal/service"
	"rpingmesh/internal/sim"
	"rpingmesh/internal/topo"
)

func cluster(t testing.TB, seed int64) *core.Cluster {
	t.Helper()
	tp, err := topo.BuildClos(topo.ClosConfig{
		Pods: 1, ToRsPerPod: 2, AggsPerPod: 2, Spines: 2,
		HostsPerToR: 2, RNICsPerHost: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCluster(core.Config{Topology: tp, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestJobIteratesAndMovesData(t *testing.T) {
	c := cluster(t, 1)
	job, err := c.NewJob(service.Config{
		Pattern:         service.AllReduce,
		ComputeTime:     sim.Second,
		VolumePerFlowGB: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(); err != nil {
		t.Fatal(err)
	}
	if job.Connections() == 0 {
		t.Fatal("no connections established")
	}
	c.Run(30 * sim.Second)
	if job.Iterations() < 5 {
		t.Fatalf("iterations = %d, want several in 30s", job.Iterations())
	}
	if job.Failed() {
		t.Fatal("healthy job failed")
	}
	if !job.Running() {
		t.Fatal("job not running")
	}
	if job.Throughput.Last() <= 0 && job.Throughput.MeanOver(0, 30) <= 0 {
		t.Fatalf("no throughput recorded: %+v", job.Throughput.Points)
	}
	job.Stop()
	if job.Running() {
		t.Fatal("job running after Stop")
	}
	iters := job.Iterations()
	c.Run(10 * sim.Second)
	if job.Iterations() != iters {
		t.Fatal("stopped job kept iterating")
	}
}

func TestJobNeedsTwoParticipants(t *testing.T) {
	c := cluster(t, 2)
	if _, err := c.NewJob(service.Config{}, c.Topo.AllHosts()[0]); err == nil {
		t.Fatal("single-participant job accepted")
	}
}

func TestAll2AllHasMoreConnections(t *testing.T) {
	c := cluster(t, 3)
	ring, err := c.NewJob(service.Config{Pattern: service.AllReduce})
	if err != nil {
		t.Fatal(err)
	}
	full, err := c.NewJob(service.Config{Pattern: service.All2All})
	if err != nil {
		t.Fatal(err)
	}
	if err := ring.Start(); err != nil {
		t.Fatal(err)
	}
	ringConns := ring.Connections()
	ring.Stop()
	if err := full.Start(); err != nil {
		t.Fatal(err)
	}
	fullConns := full.Connections()
	full.Stop()
	n := len(c.Topo.AllHosts())
	nics := 2
	if ringConns != n*nics {
		t.Fatalf("ring connections = %d, want %d", ringConns, n*nics)
	}
	if fullConns != n*(n-1)*nics {
		t.Fatalf("all2all connections = %d, want %d", fullConns, n*(n-1)*nics)
	}
}

func TestAgentsSeeServiceConnections(t *testing.T) {
	c := cluster(t, 4)
	c.StartAgents()
	c.Run(5 * sim.Second)
	job, err := c.NewJob(service.Config{Pattern: service.AllReduce, ComputeTime: sim.Second, VolumePerFlowGB: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(); err != nil {
		t.Fatal(err)
	}
	// Every host's agent should hold service-tracing targets now.
	total := 0
	for _, hid := range c.Topo.AllHosts() {
		for _, dev := range c.Topo.Hosts[hid].RNICs {
			total += c.Agent(hid).ServiceTargets(dev)
		}
	}
	if total != job.Connections() {
		t.Fatalf("agents track %d service targets, want %d", total, job.Connections())
	}
	c.Run(45 * sim.Second)
	rep, _ := c.Analyzer.LastReport()
	if rep.Service.Probes == 0 {
		t.Fatal("no service-tracing probes during the job")
	}
	job.Stop()
	total = 0
	for _, hid := range c.Topo.AllHosts() {
		for _, dev := range c.Topo.Hosts[hid].RNICs {
			total += c.Agent(hid).ServiceTargets(dev)
		}
	}
	if total != 0 {
		t.Fatalf("service targets remain after job stop: %d", total)
	}
}

func TestBarrelEffectSlowHost(t *testing.T) {
	run := func(slowFactor float64) float64 {
		c := cluster(t, 5)
		job, err := c.NewJob(service.Config{
			Pattern:         service.AllReduce,
			ComputeTime:     sim.Second,
			VolumePerFlowGB: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if slowFactor > 1 {
			job.SetComputeFactor(c.Topo.AllHosts()[0], slowFactor)
		}
		if err := job.Start(); err != nil {
			t.Fatal(err)
		}
		c.Run(60 * sim.Second)
		return float64(job.Iterations())
	}
	base := run(1)
	slow := run(3)
	if slow >= base*0.7 {
		t.Fatalf("one slow host barely affected the cluster: %v vs %v iterations (barrel effect missing)", slow, base)
	}
}

func TestLinkDownStallsAndFailsJob(t *testing.T) {
	c := cluster(t, 6)
	job, err := c.NewJob(service.Config{
		Pattern:         service.AllReduce,
		ComputeTime:     sim.Second,
		VolumePerFlowGB: 5,
		StallFailAfter:  30 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(); err != nil {
		t.Fatal(err)
	}
	c.Run(10 * sim.Second)
	thrBefore := job.Throughput.MeanOver(0, 10)
	if thrBefore <= 0 {
		t.Fatal("no baseline throughput")
	}
	// Cut a ToR uplink cable used by some ring flow: every flow crossing
	// it blocks, and the barrel effect stalls the whole job.
	c.Net.SetLinkDown(c.Topo.LinkBetween("tor-0-0", "agg-0-0"), true)
	c.Run(60 * sim.Second)
	// Either the job failed (stall budget) or throughput collapsed.
	if !job.Failed() {
		after := job.Throughput.MeanOver(30, 70)
		if after > thrBefore/2 {
			t.Fatalf("link down did not degrade the job: %v -> %v", thrBefore, after)
		}
	}
}

func TestCheckpointIdlesNetworkAndLoadsCPU(t *testing.T) {
	c := cluster(t, 7)
	job, err := c.NewJob(service.Config{
		Pattern:            service.AllReduce,
		ComputeTime:        500 * sim.Millisecond,
		VolumePerFlowGB:    2,
		CheckpointEvery:    3,
		CheckpointDuration: 10 * sim.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(); err != nil {
		t.Fatal(err)
	}
	// Run until the first checkpoint begins (3 iterations x ~1s each).
	sawHighLoad := false
	for i := 0; i < 200 && !sawHighLoad; i++ {
		c.Run(500 * sim.Millisecond)
		for _, hid := range c.Topo.AllHosts() {
			if c.Host(hid).Host.Load() > 0.9 {
				sawHighLoad = true
			}
		}
	}
	if !sawHighLoad {
		t.Fatal("checkpoint never loaded the CPUs")
	}
	// Checkpoints recur, so poll until a moment when every host's load is
	// back to normal (the checkpoint ended and training resumed).
	recovered := false
	for i := 0; i < 120 && !recovered; i++ {
		c.Run(500 * sim.Millisecond)
		recovered = true
		for _, hid := range c.Topo.AllHosts() {
			if c.Host(hid).Host.Load() > 0.9 {
				recovered = false
			}
		}
	}
	if !recovered {
		t.Fatal("CPU load stuck high after checkpoint")
	}
	c.Run(5 * sim.Second) // let post-checkpoint iterations finish
	if job.Iterations() < 4 {
		t.Fatalf("iterations after checkpoint = %d", job.Iterations())
	}
}

func TestPatternString(t *testing.T) {
	if service.AllReduce.String() != "allreduce" || service.All2All.String() != "all2all" {
		t.Fatal("Pattern.String")
	}
}

func TestDoubleStartRejected(t *testing.T) {
	c := cluster(t, 8)
	job, err := c.NewJob(service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Start(); err != nil {
		t.Fatal(err)
	}
	if err := job.Start(); err == nil {
		t.Fatal("double start accepted")
	}
	job.Stop()
	job.Stop() // idempotent
}
