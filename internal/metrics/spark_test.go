package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestSparklineBasics(t *testing.T) {
	s := &Series{}
	if s.Sparkline(10) != "" {
		t.Fatal("empty series rendered something")
	}
	for i := 0; i < 100; i++ {
		s.Append(float64(i), float64(i))
	}
	sp := s.Sparkline(10)
	if utf8.RuneCountInString(sp) != 10 {
		t.Fatalf("width = %d, want 10 (%q)", utf8.RuneCountInString(sp), sp)
	}
	// Monotonically rising data renders non-decreasing levels, starting
	// at the lowest block and ending at the highest.
	runes := []rune(sp)
	if runes[0] != '▁' || runes[len(runes)-1] != '█' {
		t.Fatalf("ramp endpoints wrong: %q", sp)
	}
	prev := -1
	for _, r := range runes {
		level := strings.IndexRune(string(sparkRunes), r)
		if level < prev {
			t.Fatalf("ramp not monotone: %q", sp)
		}
		prev = level
	}
}

func TestSparklineFlatSeries(t *testing.T) {
	s := &Series{}
	for i := 0; i < 20; i++ {
		s.Append(float64(i), 5)
	}
	sp := s.Sparkline(5)
	for _, r := range sp {
		if r != '▁' {
			t.Fatalf("flat series not rendered flat: %q", sp)
		}
	}
}

func TestSparklineWidthClamp(t *testing.T) {
	s := &Series{}
	s.Append(0, 1)
	s.Append(1, 2)
	if got := utf8.RuneCountInString(s.Sparkline(50)); got != 2 {
		t.Fatalf("width clamp = %d, want 2", got)
	}
	if s.Sparkline(0) != "" || s.Sparkline(-3) != "" {
		t.Fatal("non-positive width rendered")
	}
}

// Property: output is always exactly min(width, points) rune cells drawn
// from the spark alphabet, for arbitrary data.
func TestPropertySparklineShape(t *testing.T) {
	f := func(vals []float64, w uint8) bool {
		width := int(w%40) + 1
		s := &Series{}
		for i, v := range vals {
			s.Append(float64(i), v)
		}
		sp := s.Sparkline(width)
		want := width
		if len(vals) == 0 {
			want = 0
		} else if len(vals) < width {
			want = len(vals)
		}
		if utf8.RuneCountInString(sp) != want {
			return false
		}
		for _, r := range sp {
			if !strings.ContainsRune(string(sparkRunes), r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
