package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestDistributionEmpty(t *testing.T) {
	d := NewDistribution()
	if d.Count() != 0 || d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 || d.P50() != 0 {
		t.Fatalf("empty distribution not all-zero: %+v", d.Summarize())
	}
}

func TestDistributionExactSmall(t *testing.T) {
	d := NewDistribution()
	for _, v := range []float64{5, 1, 3, 2, 4} {
		d.Add(v)
	}
	if d.Count() != 5 {
		t.Fatalf("Count = %d", d.Count())
	}
	if d.Mean() != 3 {
		t.Fatalf("Mean = %v", d.Mean())
	}
	if d.Min() != 1 || d.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v", d.Min(), d.Max())
	}
	if d.P50() != 3 {
		t.Fatalf("P50 = %v", d.P50())
	}
	if got := d.Quantile(0); got != 1 {
		t.Fatalf("Q(0) = %v", got)
	}
	if got := d.Quantile(1); got != 5 {
		t.Fatalf("Q(1) = %v", got)
	}
	// Interpolation: Q(0.25) on [1..5] = 2.
	if got := d.Quantile(0.25); got != 2 {
		t.Fatalf("Q(0.25) = %v", got)
	}
	// Q(0.125): pos=0.5 between 1 and 2 -> 1.5.
	if got := d.Quantile(0.125); got != 1.5 {
		t.Fatalf("Q(0.125) = %v", got)
	}
}

func TestDistributionAddAfterQuantile(t *testing.T) {
	d := NewDistribution()
	d.Add(10)
	_ = d.P50()
	d.Add(1)
	d.Add(2)
	if d.P50() != 2 {
		t.Fatalf("P50 after interleaved adds = %v, want 2", d.P50())
	}
}

func TestDistributionReservoirAccuracy(t *testing.T) {
	d := NewDistributionSize(2000, 42)
	rng := rand.New(rand.NewSource(9))
	const n = 200000
	for i := 0; i < n; i++ {
		d.Add(rng.Float64() * 100) // uniform [0,100)
	}
	if d.Count() != n {
		t.Fatalf("Count = %d", d.Count())
	}
	for _, tc := range []struct{ q, want float64 }{{0.5, 50}, {0.9, 90}, {0.99, 99}} {
		got := d.Quantile(tc.q)
		if math.Abs(got-tc.want) > 4 {
			t.Fatalf("Q(%v) = %v, want ~%v", tc.q, got, tc.want)
		}
	}
	if math.Abs(d.Mean()-50) > 0.5 {
		t.Fatalf("Mean = %v, want ~50", d.Mean())
	}
	// Exact min/max survive the reservoir.
	if d.Min() > 0.01 || d.Max() < 99.99 {
		t.Logf("min=%v max=%v (statistical, tolerated)", d.Min(), d.Max())
	}
}

func TestDistributionSummary(t *testing.T) {
	d := NewDistribution()
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	s := d.Summarize()
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("Summary = %+v", s)
	}
	if math.Abs(s.P50-50.5) > 0.01 {
		t.Fatalf("P50 = %v", s.P50)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

// Property: for any sample set within the exact region, Quantile(0.5) lies
// between Min and Max, and quantiles are monotone in q.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		d := NewDistribution()
		for _, v := range raw {
			d.Add(float64(v))
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := d.Quantile(q)
			if v < prev || v < d.Min() || v > d.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: within the exact region the quantile matches a direct sorted
// lookup at the interpolation endpoints.
func TestPropertyExactQuantiles(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		d := NewDistribution()
		vals := make([]float64, len(raw))
		for i, v := range raw {
			vals[i] = float64(v)
			d.Add(float64(v))
		}
		sort.Float64s(vals)
		// q exactly at index i/(n-1) must equal vals[i].
		n := len(vals)
		for _, i := range []int{0, n / 2, n - 1} {
			q := float64(i) / float64(n-1)
			if math.Abs(d.Quantile(q)-vals[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	if c.Rate() != 0 {
		t.Fatal("empty counter rate != 0")
	}
	c.Observe(true)
	c.Observe(false)
	c.Observe(false)
	c.Observe(true)
	if c.Rate() != 0.5 {
		t.Fatalf("Rate = %v", c.Rate())
	}
	c.AddGood(4)
	if c.Rate() != 0.25 {
		t.Fatalf("Rate after AddGood = %v", c.Rate())
	}
	c.AddBad(8)
	if c.Total != 16 || c.Bad != 10 {
		t.Fatalf("counter = %+v", c)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "thr", Unit: "GB/s"}
	if s.Last() != 0 {
		t.Fatal("empty Last != 0")
	}
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(i*10))
	}
	if s.Last() != 90 {
		t.Fatalf("Last = %v", s.Last())
	}
	if got := s.MeanOver(0, 10); got != 45 {
		t.Fatalf("MeanOver all = %v", got)
	}
	if got := s.MeanOver(2, 4); got != 25 {
		t.Fatalf("MeanOver[2,4) = %v", got)
	}
	if got := s.MinOver(3, 7); got != 30 {
		t.Fatalf("MinOver = %v", got)
	}
	if got := s.MaxOver(3, 7); got != 60 {
		t.Fatalf("MaxOver = %v", got)
	}
	if s.MeanOver(100, 200) != 0 || s.MinOver(100, 200) != 0 || s.MaxOver(100, 200) != 0 {
		t.Fatal("empty-window aggregates should be 0")
	}
}

func BenchmarkDistributionAdd(b *testing.B) {
	d := NewDistributionSize(8192, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Add(float64(i % 1000))
	}
}

func BenchmarkDistributionQuantile(b *testing.B) {
	d := NewDistributionSize(8192, 1)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		d.Add(rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.P99()
	}
}
