// Package metrics provides the measurement aggregates R-Pingmesh's
// Analyzer tracks per analysis window: quantile distributions (P50…P999)
// of network RTT and end-host processing delay, drop-rate counters, and
// simple time series for reporting.
package metrics

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Distribution accumulates float64 samples and reports quantiles. Up to
// maxExact samples are kept exactly; beyond that, reservoir sampling keeps
// a uniform subsample, which is accurate enough for the P50–P999 SLA
// quantiles the Analyzer publishes every 20 s.
type Distribution struct {
	samples []float64
	n       int64 // total observed
	sum     float64
	min     float64
	max     float64
	cap     int
	rng     *rand.Rand
	seed    int64
	sorted  bool
}

// DefaultReservoir is the default maximum number of retained samples.
const DefaultReservoir = 8192

// NewDistribution returns an empty distribution with the default
// reservoir size and a deterministic subsampling stream.
func NewDistribution() *Distribution { return NewDistributionSize(DefaultReservoir, 1) }

// NewDistributionSize returns an empty distribution retaining at most size
// samples, subsampling with the given seed once full.
func NewDistributionSize(size int, seed int64) *Distribution {
	if size <= 0 {
		size = DefaultReservoir
	}
	return &Distribution{
		samples: make([]float64, 0, min(size, 1024)),
		cap:     size,
		rng:     rand.New(rand.NewSource(seed)),
		seed:    seed,
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// Reset empties the distribution in place, keeping the sample buffer's
// backing array and re-seeding the subsampling stream, so a reused
// distribution observes any sample sequence bit-identically to a fresh
// one — callers (the Analyzer's per-window SLA scratch) rely on that to
// reuse buffers across windows without perturbing seeded runs.
func (d *Distribution) Reset() {
	d.samples = d.samples[:0]
	d.n = 0
	d.sum = 0
	d.min = math.Inf(1)
	d.max = math.Inf(-1)
	d.rng = rand.New(rand.NewSource(d.seed))
	d.sorted = false
}

// Add observes one sample.
func (d *Distribution) Add(v float64) {
	d.n++
	d.sum += v
	if v < d.min {
		d.min = v
	}
	if v > d.max {
		d.max = v
	}
	if len(d.samples) < d.cap {
		d.samples = append(d.samples, v)
		d.sorted = false
		return
	}
	// Reservoir replacement keeps a uniform sample of everything seen.
	if j := d.rng.Int63n(d.n); j < int64(d.cap) {
		d.samples[j] = v
		d.sorted = false
	}
}

// Count returns the number of observed samples.
func (d *Distribution) Count() int64 { return d.n }

// Mean returns the mean of all observed samples (not just retained ones).
func (d *Distribution) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Min returns the smallest observed sample, or 0 if empty.
func (d *Distribution) Min() float64 {
	if d.n == 0 {
		return 0
	}
	return d.min
}

// Max returns the largest observed sample, or 0 if empty.
func (d *Distribution) Max() float64 {
	if d.n == 0 {
		return 0
	}
	return d.max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) with linear interpolation
// between retained samples. Returns 0 for an empty distribution.
func (d *Distribution) Quantile(q float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
	if q <= 0 {
		return d.samples[0]
	}
	if q >= 1 {
		return d.samples[len(d.samples)-1]
	}
	pos := q * float64(len(d.samples)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(d.samples) {
		return d.samples[lo]
	}
	return d.samples[lo]*(1-frac) + d.samples[lo+1]*frac
}

// P50, P90, P99 and P999 are the SLA quantiles the paper reports.
func (d *Distribution) P50() float64  { return d.Quantile(0.50) }
func (d *Distribution) P90() float64  { return d.Quantile(0.90) }
func (d *Distribution) P99() float64  { return d.Quantile(0.99) }
func (d *Distribution) P999() float64 { return d.Quantile(0.999) }

// Summary is a value-type snapshot of a Distribution.
type Summary struct {
	Count               int64
	Mean, Min, Max      float64
	P50, P90, P99, P999 float64
}

// Summarize snapshots the distribution.
func (d *Distribution) Summarize() Summary {
	return Summary{
		Count: d.n, Mean: d.Mean(), Min: d.Min(), Max: d.Max(),
		P50: d.P50(), P90: d.P90(), P99: d.P99(), P999: d.P999(),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p99=%.1f p999=%.1f max=%.1f",
		s.Count, s.Mean, s.P50, s.P99, s.P999, s.Max)
}

// Counter is a ratio counter for drop rates: failures over totals.
type Counter struct {
	Total int64
	Bad   int64
}

// Observe records one event, bad or good.
func (c *Counter) Observe(bad bool) {
	c.Total++
	if bad {
		c.Bad++
	}
}

// AddGood and AddBad record batches.
func (c *Counter) AddGood(n int64) { c.Total += n }
func (c *Counter) AddBad(n int64)  { c.Total += n; c.Bad += n }

// Rate returns Bad/Total, or 0 when empty.
func (c *Counter) Rate() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Bad) / float64(c.Total)
}

// Gauge tracks an instantaneous level and its high-water mark (queue
// depths, inflight counts). Like the rest of this package it is not
// synchronized; callers guard it with their own locks.
type Gauge struct {
	v, max int64
}

// Set records the current level.
func (g *Gauge) Set(v int64) {
	g.v = v
	if v > g.max {
		g.max = v
	}
}

// Add shifts the current level by d.
func (g *Gauge) Add(d int64) { g.Set(g.v + d) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max }

// Point is one sample of a time series.
type Point struct {
	T float64 // seconds since run start
	V float64
}

// Series is an append-only time series used for experiment reporting.
type Series struct {
	Name   string
	Unit   string
	Points []Point
}

// Append adds a point.
func (s *Series) Append(t, v float64) { s.Points = append(s.Points, Point{T: t, V: v}) }

// Last returns the most recent value, or 0 when empty.
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// MeanOver returns the mean of values with T in [from, to).
func (s *Series) MeanOver(from, to float64) float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.T >= from && p.T < to {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MinOver and MaxOver return extrema of values with T in [from, to);
// both return 0 when the window is empty.
func (s *Series) MinOver(from, to float64) float64 {
	m, ok := math.Inf(1), false
	for _, p := range s.Points {
		if p.T >= from && p.T < to {
			m = math.Min(m, p.V)
			ok = true
		}
	}
	if !ok {
		return 0
	}
	return m
}

func (s *Series) MaxOver(from, to float64) float64 {
	m, ok := math.Inf(-1), false
	for _, p := range s.Points {
		if p.T >= from && p.T < to {
			m = math.Max(m, p.V)
			ok = true
		}
	}
	if !ok {
		return 0
	}
	return m
}
