package metrics

import "strings"

// sparkRunes are the eight block heights of a terminal sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders the series into a fixed-width ASCII chart: the series
// is bucketed to width columns (mean per bucket) and scaled to the
// series' own min/max. Experiment reports use it to echo the paper's
// figure shapes straight into the terminal.
func (s *Series) Sparkline(width int) string {
	if width <= 0 || len(s.Points) == 0 {
		return ""
	}
	if width > len(s.Points) {
		width = len(s.Points)
	}
	// Bucket by time so irregular sampling still renders proportionally.
	t0 := s.Points[0].T
	t1 := s.Points[len(s.Points)-1].T
	span := t1 - t0
	sums := make([]float64, width)
	counts := make([]int, width)
	for _, p := range s.Points {
		idx := 0
		if span > 0 {
			idx = int((p.T - t0) / span * float64(width))
		}
		if idx >= width {
			idx = width - 1
		}
		sums[idx] += p.V
		counts[idx]++
	}
	vals := make([]float64, 0, width)
	min, max := 0.0, 0.0
	first := true
	for i := 0; i < width; i++ {
		if counts[i] == 0 {
			vals = append(vals, 0)
			continue
		}
		v := sums[i] / float64(counts[i])
		vals = append(vals, v)
		if first || v < min {
			min = v
		}
		if first || v > max {
			max = v
		}
		first = false
	}
	var b strings.Builder
	for _, v := range vals {
		var level int
		if max > min {
			level = int((v - min) / (max - min) * float64(len(sparkRunes)-1))
		}
		if level < 0 {
			level = 0
		}
		if level >= len(sparkRunes) {
			level = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[level])
	}
	return b.String()
}
