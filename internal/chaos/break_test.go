//go:build chaosbreak

package chaos

import (
	"strings"
	"testing"

	"rpingmesh/internal/pipeline"
)

// TestBrokenAccountingIsCaught is the invariant suite's self-test: built
// with -tags chaosbreak, the pipeline deliberately stops counting
// DropOldest sheds (internal/pipeline/accounting_break.go), and a flood
// scenario under the drop-oldest policy MUST surface a
// pipeline-accounting violation with a repro line. If this test fails,
// the soak harness has lost its teeth. Run via `make soak-selftest`.
func TestBrokenAccountingIsCaught(t *testing.T) {
	res, err := Run(Scenario{
		Seed: 11, Windows: 6,
		Kinds:  []Kind{PipelineFlood},
		Policy: pipeline.DropOldest,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Failed() {
		t.Fatal("chaosbreak build violated no invariant — the suite cannot detect broken drop accounting")
	}
	found := false
	for _, v := range res.Violations {
		if v.Invariant == "pipeline-accounting" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("expected a pipeline-accounting violation, got: %v", res.Violations)
	}
	if line := res.Scenario.ReproArgs(); !strings.Contains(line, "-seed 11") {
		t.Fatalf("repro line %q does not pin the seed", line)
	}
}
