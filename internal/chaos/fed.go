package chaos

import (
	"fmt"
	"math/rand"

	"rpingmesh/internal/api"
	"rpingmesh/internal/core"
	"rpingmesh/internal/fed"
	"rpingmesh/internal/pipeline"
	"rpingmesh/internal/sim"
)

// FedKinds returns the chaos kinds that act on a federated deployment.
func FedKinds() []Kind { return []Kind{NodePartition, CoordinatorKill, VoteDelay} }

// fedKindsOf filters a scenario's kind set down to the federation kinds;
// an empty intersection enables all of them (a federated scenario that
// exercises no federation fault tests nothing).
func fedKindsOf(kinds []Kind) []Kind {
	var out []Kind
	for _, k := range kinds {
		switch k {
		case NodePartition, CoordinatorKill, VoteDelay:
			out = append(out, k)
		}
	}
	if len(out) == 0 {
		return FedKinds()
	}
	return out
}

// fedHarness is one federated scenario's live state: the lockstep
// deployment under test plus the federation invariant bookkeeping.
type fedHarness struct {
	sc *Scenario
	d  *fed.Deploy

	// Ops console over node 0's local stack and global incident engine,
	// driven in-process; the quorum-aware /healthz is checked every step
	// against node 0's own federation status.
	console *api.Server

	// Per-kind target-selection PRNGs, mirroring the single-node harness.
	targets map[Kind]*rand.Rand

	// lastLeader is the most recent committing leader (for the
	// coordinator-kill target), never -1 after the first commit.
	lastLeader int

	// healthyMisses counts consecutive steps where a majority of nodes
	// was up and connected yet nobody committed. Election tolerates one
	// stale window after an outage (a dead node lingers in peer tables
	// for HeartbeatMiss windows when replication was stalled), so
	// liveness only fires when the misses exceed that tolerance.
	healthyMisses int

	lastWindow int
	violations []Violation
}

func (h *fedHarness) violate(name string, window int, format string, args ...any) {
	if len(h.violations) >= maxViolations {
		return
	}
	h.violations = append(h.violations, Violation{
		Invariant: name, Window: window, Detail: fmt.Sprintf(format, args...),
	})
}

// runFed executes one federated scenario: FedNodes fed nodes in lockstep,
// chaos drawn from the federation kinds, the federation invariant suite
// after every coordination step, and convergence checks after recovery.
func runFed(sc Scenario) (*Result, error) {
	d, err := fed.NewDeploy(fed.DeployConfig{
		Fed: fed.Config{
			Nodes:  sc.FedNodes,
			Secret: uint64(sc.Seed)*2654435761 + 0xfed,
		},
		Seed: sc.Seed,
		Configure: func(node int, cfg *core.Config) {
			cfg.Pipeline = pipeline.Config{Policy: sc.Policy, Capacity: sc.Capacity}
		},
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: fed deploy: %w", err)
	}
	h := &fedHarness{
		sc:         &sc,
		d:          d,
		targets:    make(map[Kind]*rand.Rand),
		lastWindow: -1,
	}
	for _, k := range AllKinds() {
		h.targets[k] = rand.New(rand.NewSource(kindSeed(sc.Seed, k+NumKinds)))
	}
	n0 := d.Node(0)
	h.console = api.New(api.Backend{
		Windows: n0.Cluster.Analyzer, TSDB: n0.Cluster.TSDB,
		Pipeline: n0.Cluster.Ingest, Alerts: n0.Replica().Engine(),
		Peers: n0,
	}, api.Config{})
	d.OnStep(h.afterStep)

	// Draw the chaos timeline from the federation kinds' own streams and
	// arm every event on the deploy's window-boundary scheduler.
	fedSc := sc
	fedSc.Kinds = fedKindsOf(sc.Kinds)
	events := generate(&fedSc, d.Window())
	horizon := sim.Time(sc.Windows) * d.Window()
	for _, ev := range events {
		h.schedule(ev, horizon)
	}

	d.Run(sc.Windows)
	h.recover()
	d.Run(sc.RecoveryWindows)
	h.checkConverged()

	acct := d.Accounting()
	return &Result{
		Scenario:      sc,
		Events:        events,
		Windows:       d.Steps(),
		Violations:    h.violations,
		Pipeline:      n0.Cluster.Ingest.Stats(),
		LeaderHistory: d.LeaderHistory(),
		Fingerprint: fmt.Sprintf("fed[n=%d steps=%d maxseq=%d digest=%x tl=%x leaders=%v] votes[%s] viol=%d",
			sc.FedNodes, d.Steps(), d.MaxSeq(), digestAt(d, d.MaxSeq()),
			n0.Replica().TimelineDigest(), d.LeaderHistory(), acct, len(h.violations)),
	}, nil
}

func digestAt(d *fed.Deploy, seq uint64) uint64 {
	dg, _ := d.CanonicalDigest(seq)
	return dg
}

// schedule arms one federation chaos event: applied at the first window
// boundary at or after At, unwound at min(At+Duration, horizon).
func (h *fedHarness) schedule(ev Event, horizon sim.Time) {
	end := ev.At + ev.Duration
	if end > horizon {
		end = horizon
	}
	switch ev.Kind {
	case NodePartition:
		i := h.targets[NodePartition].Intn(h.d.Nodes())
		h.d.At(ev.At, func() { h.d.Partition(i, true) })
		h.d.At(end, func() { h.d.Partition(i, false) })

	case CoordinatorKill:
		// The victim is whoever is leading when the event fires — that is
		// the whole point of the action — so it is resolved at apply time
		// (deterministically: lastLeader is a pure function of the run).
		victim := -1
		h.d.At(ev.At, func() {
			victim = h.lastLeader
			h.d.Kill(victim, true)
		})
		h.d.At(end, func() {
			if victim >= 0 {
				h.d.Kill(victim, false)
			}
		})

	case VoteDelay:
		i := h.targets[VoteDelay].Intn(h.d.Nodes())
		h.d.At(ev.At, func() { h.d.DelayVotes(i, true) })
		h.d.At(end, func() { h.d.DelayVotes(i, false) })
	}
}

// recover heals every outstanding federation fault so the recovery
// windows measure a federation allowed to reconcile.
func (h *fedHarness) recover() {
	for i := 0; i < h.d.Nodes(); i++ {
		if h.d.Killed(i) {
			h.d.Kill(i, false)
		}
		if h.d.Partitioned(i) {
			h.d.Partition(i, false)
		}
		h.d.DelayVotes(i, false)
	}
}

// healthy reports whether a majority of nodes is up and connected this
// step — the precondition under which the federation must make progress.
func (h *fedHarness) healthy() bool {
	up := 0
	for i := 0; i < h.d.Nodes(); i++ {
		if !h.d.Killed(i) && !h.d.Partitioned(i) {
			up++
		}
	}
	return up >= h.sc.FedNodes/2+1
}

// afterStep is the federation invariant sweep, run after every
// coordination step.
func (h *fedHarness) afterStep(info fed.StepInfo) {
	win := info.Window

	// Steps are gapless and in order.
	if win != h.lastWindow+1 {
		h.violate("fed-step-seq", win, "step window %d follows %d", win, h.lastWindow)
	}
	if win > h.lastWindow {
		h.lastWindow = win
	}

	// No replica ever rejects a round or diverges from the chain.
	for _, e := range info.Errors {
		h.violate("fed-log-divergence", win, "%s", e)
	}
	// No window's round is committed by two leaders — the split-brain
	// invariant (an incident opened under two leaders would follow).
	if info.DoubleCommit {
		h.violate("fed-double-commit", win, "two nodes committed window %d", win)
	}
	if info.Leader >= 0 {
		h.lastLeader = info.Leader
	}

	// Liveness: a healthy majority must commit, modulo one stale-election
	// window after an outage.
	if h.healthy() {
		if info.Leader < 0 {
			h.healthyMisses++
			if h.healthyMisses > 1 {
				h.violate("fed-liveness", win,
					"%d consecutive healthy steps without a commit", h.healthyMisses)
			}
		} else {
			h.healthyMisses = 0
		}
	} else {
		h.healthyMisses = 0
	}

	// Vote conservation: every emitted vote is counted canonically, still
	// buffered, expired node-side, or dropped-and-counted by a replica.
	if acct := h.d.Accounting(); !acct.Balanced() {
		h.violate("fed-vote-conservation", win, "ledger unbalanced: %s", acct)
	}

	h.checkReplicaAgreement(win)

	// Every replica's incident engine stays structurally sound (no
	// double-open per key — the "no incident double-opened" invariant).
	for i := 0; i < h.d.Nodes(); i++ {
		if err := h.d.Node(i).Replica().Engine().CheckInvariants(); err != nil {
			h.violate("fed-alert-consistency", win, "node %d: %v", i, err)
		}
	}

	// The ops console answers every step, and its quorum-aware /healthz
	// agrees with node 0's own federation status: 200 while quorum holds,
	// 503 with a reason while it does not.
	want := 0 // Check treats 0 as 200
	if st := h.d.Node(0).FedStatus(); !st.QuorumOK {
		want = 503
	}
	if err := h.console.Check("/healthz", want); err != nil {
		h.violate("fed-api-health", win, "%v", err)
	}
	if err := h.console.Check("/api/peers", 0); err != nil {
		h.violate("fed-api-health", win, "%v", err)
	}
}

// checkReplicaAgreement: equal applied seq implies equal log digest and
// equal incident timeline, and every replica's head matches the
// deploy-wide canonical round at its seq — "no incident lost or
// double-opened across failover" reduced to log identity.
func (h *fedHarness) checkReplicaAgreement(win int) {
	n := h.d.Nodes()
	for i := 0; i < n; i++ {
		ri := h.d.Node(i).Replica()
		if dg, ok := h.d.CanonicalDigest(ri.AppliedSeq()); ok && dg != ri.Digest() {
			h.violate("fed-replica-divergence", win,
				"node %d digest %x at seq %d, canonical %x", i, ri.Digest(), ri.AppliedSeq(), dg)
		}
		for j := i + 1; j < n; j++ {
			rj := h.d.Node(j).Replica()
			if ri.AppliedSeq() != rj.AppliedSeq() {
				continue
			}
			if ri.Digest() != rj.Digest() {
				h.violate("fed-replica-divergence", win,
					"nodes %d and %d at seq %d with digests %x vs %x",
					i, j, ri.AppliedSeq(), ri.Digest(), rj.Digest())
			}
			if ri.TimelineDigest() != rj.TimelineDigest() {
				h.violate("fed-timeline-divergence", win,
					"nodes %d and %d at seq %d with timeline digests %x vs %x",
					i, j, ri.AppliedSeq(), ri.TimelineDigest(), rj.TimelineDigest())
			}
		}
	}
}

// checkConverged runs the end-of-run federation checks: after the
// recovery windows every replica holds the same log and the same global
// incident timeline, the ledger balances, the federation is committing
// again, and the console is healthy.
func (h *fedHarness) checkConverged() {
	win := h.lastWindow
	r0 := h.d.Node(0).Replica()
	for i := 1; i < h.d.Nodes(); i++ {
		ri := h.d.Node(i).Replica()
		if ri.AppliedSeq() != r0.AppliedSeq() || ri.Digest() != r0.Digest() {
			h.violate("fed-convergence", win,
				"node %d ended at seq %d digest %x; node 0 at seq %d digest %x",
				i, ri.AppliedSeq(), ri.Digest(), r0.AppliedSeq(), r0.Digest())
		}
		if ri.TimelineDigest() != r0.TimelineDigest() {
			h.violate("fed-convergence", win,
				"node %d incident timeline diverges from node 0 after recovery", i)
		}
	}
	if acct := h.d.Accounting(); !acct.Balanced() {
		h.violate("fed-vote-conservation", win, "final ledger unbalanced: %s", acct)
	}
	hist := h.d.LeaderHistory()
	if len(hist) == 0 || hist[len(hist)-1] < 0 {
		h.violate("fed-convergence", win, "no commit in the final recovery window (history %v)", hist)
	}
	if err := h.console.Check("/healthz", 0); err != nil {
		h.violate("fed-convergence", win, "post-recovery healthz: %v", err)
	}
}
