package chaos

import (
	"rpingmesh/internal/alert"
	"rpingmesh/internal/proto"
	"rpingmesh/internal/rnic"
	"rpingmesh/internal/sim"
	"rpingmesh/internal/topo"
)

// schedule arms one chaos event on the simulation engine: the action is
// applied at ev.At and unwound at min(ev.At+ev.Duration, horizon), so
// nothing is left broken when the recovery phase begins. All PRNG draws
// happen here, at scheduling time in sorted-event order, never inside
// engine callbacks — playback order can then never perturb the streams.
func (h *harness) schedule(ev Event, horizon sim.Time) {
	end := ev.At + ev.Duration
	if end > horizon {
		end = horizon
	}
	eng := h.c.Eng
	switch ev.Kind {
	case AgentCrash:
		hid := h.pickHost(AgentCrash)
		eng.At(ev.At, func() { h.crashAgent(hid) })
		eng.At(end, func() { h.restartAgent(hid) })

	case WireSever:
		if !h.sc.Wire {
			return // no wire transport in this scenario; nothing to sever
		}
		// Repeated severs across the event window: every Upload/Pinglists
		// call in between forces a fresh redial, the §4.1 Controller-
		// restart survivability story.
		for t := ev.At; t < end; t += h.window / 2 {
			eng.At(t, func() {
				if h.srv != nil {
					h.srv.DisconnectAll()
				}
			})
		}

	case PipelineFlood:
		// Same-host bursts within a single engine callback: in deferred
		// mode every upload arms a drain, so only an intra-callback burst
		// larger than the partition capacity can actually overflow it and
		// force the overload policy to engage.
		burst := 2 * h.sc.Capacity
		for t := ev.At; t < end; t += h.window / 4 {
			eng.At(t, func() { h.flood(burst) })
		}

	case ReaderStall:
		eng.At(ev.At, func() {
			h.stallActive = true
			// Each stall event also grows the stream-subscriber swarm:
			// stalled readers that never drain (the hub must shed and
			// eventually evict them without blocking a publish) next to
			// slow ones drained once per window.
			h.spawnReaderSwarm()
		})
		eng.At(end, func() { h.stallActive = false })

	case ClockSkew:
		hid := h.pickHost(ClockSkew)
		atClocks := h.drawClocks(hid)
		endClocks := h.drawClocks(hid)
		eng.At(ev.At, func() { h.skewHost(hid, atClocks) })
		eng.At(end, func() { h.skewHost(hid, endClocks) })

	case NodePartition, CoordinatorKill, VoteDelay:
		// Federation faults: the fed harness schedules these (fed.go); on
		// a single-node scenario there is nothing to partition or depose.
		return
	}
}

// pickHost draws a target host from the kind's own PRNG stream.
func (h *harness) pickHost(k Kind) topo.HostID {
	hosts := h.c.Topo.AllHosts() // sorted — stable across runs
	return hosts[h.targets[k].Intn(len(hosts))]
}

// crashAgent stops a host's Agent mid-flight: tickers halted, QPs
// destroyed, in-flight probes abandoned. Idempotent under overlapping
// crash events on the same host.
func (h *harness) crashAgent(hid topo.HostID) {
	if h.crashed[hid] {
		return
	}
	h.crashed[hid] = true
	h.c.Agent(hid).Stop()
}

// restartAgent brings a crashed Agent back with fresh QPNs (§4.3.1's
// QPN-reset noise source for everyone still probing the old ones).
func (h *harness) restartAgent(hid topo.HostID) {
	if !h.crashed[hid] {
		return
	}
	h.crashed[hid] = false
	if err := h.c.Agent(hid).Restart(); err != nil {
		h.violate("recovery", h.lastIndex, "agent %s restart: %v", hid, err)
	}
}

// flood bursts n batches from a dedicated pseudo-host straight into the
// ingest pipeline. One host ⇒ one partition (FNV-1a PartitionKey), so the
// burst is guaranteed to pile onto a single queue. The batches carry no
// probe results: the analyzer ignores them (a host that is never a probe
// target trips no host-down logic) while every pipeline counter still
// moves, which is exactly what the accounting invariant wants stressed.
func (h *harness) flood(n int) {
	for i := 0; i < n; i++ {
		h.floodSeq++
		h.c.Upload(proto.UploadBatch{
			Host: "chaos-flood",
			Sent: h.c.Eng.Now(),
			Seq:  h.floodSeq,
		})
	}
}

// drawClocks draws a replacement clock for the host CPU and each of its
// devices from the ClockSkew stream (offset uniform in ±10 s, drift-free
// — drift is the fabric simulation's own dimension).
func (h *harness) drawClocks(hid topo.HostID) []rnic.Clock {
	rng := h.targets[ClockSkew]
	n := 1 + len(h.c.Topo.Hosts[hid].RNICs)
	clocks := make([]rnic.Clock, n)
	for i := range clocks {
		off := sim.Time(rng.Int63n(int64(20*sim.Second)+1)) - 10*sim.Second
		clocks[i] = rnic.Clock{Offset: off}
	}
	return clocks
}

// skewHost steps the host CPU clock and every device clock to the given
// replacements (NTP step / VM migration mid-run). Probes in flight keep
// their old send timestamps — the analyzer's clock algebra has to cope.
func (h *harness) skewHost(hid topo.HostID, clocks []rnic.Clock) {
	node := h.c.Host(hid)
	node.Host.SetClock(clocks[0])
	for i, dev := range h.c.Topo.Hosts[hid].RNICs {
		node.Devices[dev].SetClock(clocks[1+i])
	}
}

// stallNotifier is the ReaderStall payload: a pathologically slow alert
// consumer that grinds through full-horizon tsdb scans on every
// notification. It runs inside the alert engine's notification path (the
// engine's critical section), like a sluggish pager integration — so it
// must only touch the tsdb, never call back into the alert engine, which
// would self-deadlock.
func (h *harness) stallNotifier() alert.Notifier {
	return alert.NotifierFunc(func(alert.Event) {
		if !h.stallActive {
			return
		}
		for _, name := range h.c.TSDB.Series() {
			_ = h.c.TSDB.Range(name, 0, h.c.Eng.Now())
		}
	})
}
