// Package chaos turns the monitoring stack itself into the system under
// test. internal/faultgen injects Table 2's fourteen *network* root
// causes; this package injects failures of the *measurement system* —
// agents crashing and restarting mid-window, management-network (wire)
// sessions severed under the Controller, the ingest pipeline saturated
// until its overload policy engages, console readers stalling the alert
// and tsdb tiers, and per-host clocks stepping underneath in-flight
// probes. The premise follows 007 (Arzani et al.) and the paper's own
// deployment story: a monitoring system's availability and accounting
// must be verified continuously, in exactly the regimes where it is most
// needed.
//
// Everything is seeded and deterministic: chaos events ride the same
// discrete-event engine as the fabric simulation, each action kind draws
// from its own PRNG stream (so removing one kind during repro
// minimization does not reshuffle the others), and a scenario replayed
// with the same Scenario produces bit-identical results.
//
// After every analysis window closes and folds into the incident engine
// (core.Cluster.OnWindow), the Invariants suite audits the stack:
// pipeline drop accounting exact to the batch, analyzer window sequence
// numbers gapless, no (entity, class) ever open twice in the incident
// engine, tsdb tier seams consistent, the ops API always answering
// /healthz. At scenario end the harness additionally checks recovery,
// goroutine counts, and (on Linux) file-descriptor counts.
//
// cmd/rpmesh-soak drives N seeded scenarios under a wall-clock budget
// and exits non-zero with a minimized repro on any violation.
package chaos

import (
	"fmt"
	"sort"
	"strings"

	"rpingmesh/internal/pipeline"
	"rpingmesh/internal/sim"
)

// Kind enumerates the monitoring-stack fault actions.
type Kind int

const (
	// AgentCrash stops a host's Agent mid-window (QPs destroyed, uploads
	// cease — the restart re-registers with fresh QPNs, the §4.3.1 noise
	// source) and restarts it after the event duration.
	AgentCrash Kind = iota
	// WireSever closes every live Agent↔Controller TCP session; clients
	// must transparently redial (§4.1's Controller-restart story). Only
	// meaningful when the scenario runs the wire transport.
	WireSever
	// PipelineFlood bursts batches into the ingest pipeline faster than
	// one partition can admit them, forcing the configured overload
	// policy (block / drop-oldest / drop-newest) to engage for real.
	PipelineFlood
	// ReaderStall models slow console consumers: a notifier that grinds
	// through full-horizon tsdb scans inside the alert engine's critical
	// section, plus heavy API/tsdb queries every second.
	ReaderStall
	// ClockSkew steps a host's CPU clock and all its device clocks to
	// new random offsets mid-run (NTP step / VM migration), and steps
	// them again when the event ends.
	ClockSkew
	// NodePartition isolates one federation node from every peer: its
	// cluster keeps probing and voting into the outbox, reconciling on
	// heal. Only meaningful when Scenario.FedNodes > 1.
	NodePartition
	// CoordinatorKill takes the current federation leader's coordination
	// process down mid-window, forcing a failover, and revives it later
	// (failback once IncidentSync catches it up). FedNodes > 1 only.
	CoordinatorKill
	// VoteDelay withholds one federation node's vote deliveries while
	// letting everything else flow — the arrival-interleaving knob the
	// determinism invariant exercises. FedNodes > 1 only.
	VoteDelay

	// NumKinds counts the action kinds.
	NumKinds
)

func (k Kind) String() string {
	switch k {
	case AgentCrash:
		return "agent-crash"
	case WireSever:
		return "wire-sever"
	case PipelineFlood:
		return "pipeline-flood"
	case ReaderStall:
		return "reader-stall"
	case ClockSkew:
		return "clock-skew"
	case NodePartition:
		return "node-partition"
	case CoordinatorKill:
		return "coordinator-kill"
	case VoteDelay:
		return "vote-delay"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// AllKinds returns every action kind.
func AllKinds() []Kind {
	out := make([]Kind, NumKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// ParseKinds parses a comma-separated kind list ("agent-crash,clock-skew");
// empty and "all" mean every kind.
func ParseKinds(s string) ([]Kind, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return AllKinds(), nil
	}
	var out []Kind
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, k := range AllKinds() {
			if k.String() == name {
				out = append(out, k)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("chaos: unknown kind %q (want %s)", name, KindNames())
		}
	}
	return out, nil
}

// KindNames renders every kind name, comma-separated.
func KindNames() string {
	names := make([]string, NumKinds)
	for i, k := range AllKinds() {
		names[i] = k.String()
	}
	return strings.Join(names, ",")
}

// FormatKinds renders a kind set as a canonical (sorted, deduplicated)
// comma-separated list — the form repro command lines use.
func FormatKinds(kinds []Kind) string {
	set := map[Kind]bool{}
	for _, k := range kinds {
		set[k] = true
	}
	ordered := make([]Kind, 0, len(set))
	for _, k := range AllKinds() {
		if set[k] {
			ordered = append(ordered, k)
		}
	}
	names := make([]string, len(ordered))
	for i, k := range ordered {
		names[i] = k.String()
	}
	return strings.Join(names, ",")
}

// Event is one scheduled chaos action: applied at At, unwound (restart,
// reconnect, flood stop, …) after Duration.
type Event struct {
	At       sim.Time
	Duration sim.Time
	Kind     Kind
}

// Scenario configures one seeded chaos run. The zero value of every
// field takes a default; Seed alone fully determines the outcome.
type Scenario struct {
	// Seed drives the cluster simulation AND every chaos stream.
	Seed int64
	// Windows is how many 20 s analysis windows the scenario spans
	// before the recovery phase (default 8).
	Windows int
	// RecoveryWindows run after all chaos unwinds, so end-of-run
	// invariants check a system that had time to heal (default 2).
	RecoveryWindows int
	// Kinds enables a subset of chaos actions (default: all).
	Kinds []Kind
	// Policy is the ingest pipeline's overload policy under flood.
	Policy pipeline.Policy
	// Capacity bounds each pipeline partition (default 64 — small
	// enough that PipelineFlood actually overflows it).
	Capacity int
	// Wire runs the Agent↔Controller control plane over real loopback
	// TCP (wire.Server/Client), making WireSever meaningful.
	Wire bool
	// NetworkFaults composes a faultgen schedule underneath the chaos —
	// the fabric misbehaves at the same time as the monitoring stack.
	NetworkFaults bool
	// HostsPerToR sizes the topology (default 2; 1 pod × 2 ToRs).
	HostsPerToR int
	// Shards > 1 builds a Shards-pod topology and runs the cluster on the
	// pod-sharded parallel engine (core.Config.Shards). Results stay a
	// pure function of the scenario; sharding is exercised for races and
	// determinism, not different behavior.
	Shards int
	// ShardEpoch caps the sharded engine's adaptive lookahead widening
	// (core.Config.ShardEpoch): 0 default, 1 classic lockstep with
	// barrier elision off. Rotated by the soak harness so both the
	// widened and lockstep coordination paths run under chaos, which must
	// never change a fingerprint.
	ShardEpoch int
	// FedNodes > 1 runs the scenario against a federated deployment
	// (fed.Deploy): FedNodes peer nodes with quorum incident
	// confirmation, chaos drawn from the federation kinds
	// (node-partition, coordinator-kill, vote-delay), and the federation
	// invariant suite instead of the single-cluster one.
	FedNodes int
	// QoSClasses > 1 runs the fabric with that many per-priority queues
	// (qos.Profile); 0/1 keeps the single-class legacy fabric.
	QoSClasses int
	// QoSFault plays one QoS fault family (QoSFaultKinds) underneath the
	// monitoring chaos. Requires QoSClasses > 1.
	QoSFault string
	// Localizer selects the Analyzer's switch-localization stage
	// ("alg1" default, "007" democratic voting).
	Localizer string
	// APIReaders > 0 hammers the ops console concurrently with the run:
	// that many reader goroutines loop over point queries and long-poll
	// stream requests in-process, plus up to 16 real SSE sockets over a
	// live listener. Readers only read — fingerprints are unaffected —
	// but every one must drain cleanly through Shutdown before the
	// end-of-run leak checks.
	APIReaders int
}

func (sc *Scenario) setDefaults() {
	if sc.Windows <= 0 {
		sc.Windows = 8
	}
	if sc.RecoveryWindows <= 0 {
		sc.RecoveryWindows = 2
	}
	if len(sc.Kinds) == 0 {
		sc.Kinds = AllKinds()
	}
	if sc.Capacity <= 0 {
		sc.Capacity = 64
	}
	if sc.HostsPerToR <= 0 {
		sc.HostsPerToR = 2
	}
}

// enabled reports whether the scenario runs a kind.
func (sc *Scenario) enabled(k Kind) bool {
	for _, have := range sc.Kinds {
		if have == k {
			return true
		}
	}
	return false
}

// ReproArgs renders the scenario as rpmesh-soak flags that replay it
// exactly — the line printed next to every violation.
func (sc Scenario) ReproArgs() string {
	args := fmt.Sprintf("-seed %d -scenarios 1 -windows %d -kinds %s -policy %s",
		sc.Seed, sc.Windows, FormatKinds(sc.Kinds), sc.Policy)
	if sc.QoSClasses > 1 {
		args += fmt.Sprintf(" -qos-classes %d", sc.QoSClasses)
	}
	if sc.QoSFault != "" {
		args += fmt.Sprintf(" -qos-fault %s", sc.QoSFault)
	}
	if sc.Localizer != "" {
		args += fmt.Sprintf(" -localizer %s", sc.Localizer)
	}
	if sc.Wire {
		args += " -wire"
	}
	if sc.NetworkFaults {
		args += " -net-faults"
	}
	if sc.Shards > 1 {
		args += fmt.Sprintf(" -shards %d", sc.Shards)
	}
	if sc.ShardEpoch > 0 {
		args += fmt.Sprintf(" -shard-epoch %d", sc.ShardEpoch)
	}
	if sc.FedNodes > 1 {
		args += fmt.Sprintf(" -fed-nodes %d", sc.FedNodes)
	}
	if sc.APIReaders > 0 {
		args += fmt.Sprintf(" -api-readers %d", sc.APIReaders)
	}
	return args
}

// ParsePolicy parses a pipeline overload policy name as rendered by
// pipeline.Policy.String (block, drop-oldest, drop-newest).
func ParsePolicy(s string) (pipeline.Policy, error) {
	for _, p := range []pipeline.Policy{pipeline.Block, pipeline.DropOldest, pipeline.DropNewest} {
		if p.String() == strings.TrimSpace(s) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown policy %q (want block,drop-oldest,drop-newest)", s)
}

// Violation is one invariant breach, pinned to the analysis window that
// exposed it.
type Violation struct {
	Invariant string
	Window    int
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("invariant=%s window=%d: %s", v.Invariant, v.Window, v.Detail)
}

// Result is one scenario's outcome.
type Result struct {
	Scenario   Scenario
	Events     []Event // chaos timeline actually scheduled
	Windows    int     // analysis windows observed (incl. recovery)
	Violations []Violation

	// Pipeline is the ingest tier's final counter snapshot — soak output
	// and tests read drop/shed/block activity from here.
	Pipeline pipeline.Stats

	// LeaderHistory records the committing federation leader of every
	// coordination step (-1 where no commit happened); empty for
	// non-federated scenarios. Soak repro lines print it so a failover
	// sequence can be read straight off a violation report.
	LeaderHistory []int

	// Fingerprint summarizes the run for determinism checks: two runs
	// of the same Scenario must produce identical fingerprints.
	Fingerprint string
}

// Failed reports whether any invariant was violated.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

// sortEvents orders a timeline by (At, Kind) for deterministic playback.
func sortEvents(events []Event) {
	sort.Slice(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].Kind < events[j].Kind
	})
}
