package chaos

import (
	"math/rand"

	"rpingmesh/internal/sim"
)

// kindSeed derives the PRNG seed for one action kind's event stream.
// Each kind draws from its own stream so that disabling a kind during
// repro minimization leaves every other kind's timeline untouched —
// the shrunk scenario still reproduces the same surviving events.
func kindSeed(seed int64, k Kind) int64 {
	return seed*1_000_003 + int64(k) + 1
}

// generate draws the chaos timeline for a scenario over the given
// horizon. Per kind: a Poisson event train (exponential gaps, mean one
// event per three windows) with exponential durations clamped to
// [window/2, 2×window], so every event both overlaps a window boundary
// sometimes and unwinds before the recovery phase usually. At least one
// event per enabled kind is guaranteed — a soak scenario that never
// exercises an enabled kind tests nothing.
func generate(sc *Scenario, window sim.Time) []Event {
	horizon := sim.Time(sc.Windows) * window
	var events []Event
	for _, k := range sc.Kinds {
		rng := rand.New(rand.NewSource(kindSeed(sc.Seed, k)))
		meanGap := 3 * window
		minDur := window / 2
		maxDur := 2 * window
		t := sim.Time(rng.ExpFloat64() * float64(meanGap))
		n := 0
		for t < horizon {
			dur := sim.Time(rng.ExpFloat64() * float64(window))
			if dur < minDur {
				dur = minDur
			}
			if dur > maxDur {
				dur = maxDur
			}
			events = append(events, Event{At: t, Duration: dur, Kind: k})
			n++
			t += sim.Time(rng.ExpFloat64() * float64(meanGap))
		}
		if n == 0 {
			// Guarantee coverage: one event in the middle of the run.
			events = append(events, Event{At: horizon / 3, Duration: window, Kind: k})
		}
	}
	sortEvents(events)
	return events
}
