//go:build !chaosbreak

package chaos

import (
	"strings"
	"testing"

	"rpingmesh/internal/pipeline"
	"rpingmesh/internal/sim"
)

func mustRun(t *testing.T, sc Scenario) *Result {
	t.Helper()
	res, err := Run(sc)
	if err != nil {
		t.Fatalf("Run(%+v): %v", sc, err)
	}
	return res
}

func assertGreen(t *testing.T, res *Result) {
	t.Helper()
	for _, v := range res.Violations {
		t.Errorf("violation: %s", v)
	}
	if res.Failed() {
		t.Fatalf("scenario failed; repro: rpmesh-soak %s", res.Scenario.ReproArgs())
	}
}

// TestScenarioGreen: the full chaos gauntlet — every action kind against
// a healthy stack — produces zero invariant violations.
func TestScenarioGreen(t *testing.T) {
	res := mustRun(t, Scenario{Seed: 1})
	assertGreen(t, res)
	if res.Windows != 10 { // 8 chaos + 2 recovery
		t.Fatalf("observed %d windows, want 10", res.Windows)
	}
	if len(res.Events) == 0 {
		t.Fatal("no chaos events were scheduled")
	}
	// Every enabled kind must have been exercised at least once.
	seen := map[Kind]bool{}
	for _, ev := range res.Events {
		seen[ev.Kind] = true
	}
	for _, k := range AllKinds() {
		if !seen[k] {
			t.Errorf("kind %s never scheduled", k)
		}
	}
}

// TestDeterminism: the same Scenario replayed produces a bit-identical
// fingerprint and violation list — the property every repro line relies
// on.
func TestDeterminism(t *testing.T) {
	sc := Scenario{Seed: 42, Windows: 6}
	a := mustRun(t, sc)
	b := mustRun(t, sc)
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprints diverge:\n  a: %s\n  b: %s", a.Fingerprint, b.Fingerprint)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts diverge: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d diverges: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}

// TestShardedScenario: the full chaos gauntlet on the pod-sharded
// parallel engine stays green, and a replay of the same sharded
// Scenario is bit-identical — chaos actions and the invariant suite are
// deterministic regardless of how many pods run concurrently.
func TestShardedScenario(t *testing.T) {
	sc := Scenario{Seed: 5, Windows: 6, Shards: 2}
	a := mustRun(t, sc)
	assertGreen(t, a)
	b := mustRun(t, sc)
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("sharded fingerprints diverge:\n  a: %s\n  b: %s", a.Fingerprint, b.Fingerprint)
	}
}

// TestShardedScenarioFourShards: the soak path at -shards=4 — wider
// adaptive lookahead epochs over more concurrent pods — stays green,
// replays bit-identically, and produces the exact same fingerprint with
// adaptive widening/elision enabled (default) and disabled (ShardEpoch=1,
// classic lockstep): the coordination schedule must never leak into
// results. Name intentionally extends TestShardedScenario so the
// determinism gate's -run regex covers it at GOMAXPROCS 1 and 8.
func TestShardedScenarioFourShards(t *testing.T) {
	sc := Scenario{Seed: 9, Windows: 6, Shards: 4}
	a := mustRun(t, sc)
	assertGreen(t, a)
	b := mustRun(t, sc)
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("4-shard fingerprints diverge:\n  a: %s\n  b: %s", a.Fingerprint, b.Fingerprint)
	}
	lock := sc
	lock.ShardEpoch = 1
	c := mustRun(t, lock)
	if a.Fingerprint != c.Fingerprint {
		t.Fatalf("adaptive vs lockstep fingerprints diverge:\n  adaptive: %s\n  lockstep: %s", a.Fingerprint, c.Fingerprint)
	}
}

// TestWireScenario: chaos over the real loopback-TCP control plane,
// including WireSever, stays green — clients redial severed sessions
// transparently.
func TestWireScenario(t *testing.T) {
	res := mustRun(t, Scenario{Seed: 3, Windows: 6, Wire: true})
	assertGreen(t, res)
}

// TestNetworkFaultComposition: faultgen's network root causes running
// underneath the monitoring-stack chaos — the hardest regime — still
// violates nothing.
func TestNetworkFaultComposition(t *testing.T) {
	res := mustRun(t, Scenario{Seed: 7, Windows: 6, NetworkFaults: true})
	assertGreen(t, res)
}

// TestFloodEngagesEachPolicy: PipelineFlood genuinely forces each
// overload policy to act — accounting stays exact while batches are
// actually dropped (or producers actually wait).
func TestFloodEngagesEachPolicy(t *testing.T) {
	for _, pol := range []pipeline.Policy{pipeline.Block, pipeline.DropOldest, pipeline.DropNewest} {
		t.Run(pol.String(), func(t *testing.T) {
			res := mustRun(t, Scenario{
				Seed: 11, Windows: 6,
				Kinds:  []Kind{PipelineFlood},
				Policy: pol,
			})
			assertGreen(t, res)
			st := res.Pipeline
			switch pol {
			case pipeline.Block:
				if st.BlockWaits == 0 {
					t.Error("flood under Block never made a producer wait")
				}
				if st.Dropped() != 0 {
					t.Errorf("Block dropped %d batches; must drop none", st.Dropped())
				}
			case pipeline.DropOldest:
				if st.DroppedOldest == 0 {
					t.Error("flood under DropOldest never shed the queue head")
				}
			case pipeline.DropNewest:
				if st.DroppedNewest == 0 {
					t.Error("flood under DropNewest never rejected a batch")
				}
			}
		})
	}
}

// TestKindStreamIndependence: disabling one kind leaves every other
// kind's timeline untouched — the property greedy repro minimization
// depends on.
func TestKindStreamIndependence(t *testing.T) {
	window := 20 * sim.Second
	full := Scenario{Seed: 5}
	full.setDefaults()
	all := generate(&full, window)

	shrunk := Scenario{Seed: 5, Kinds: []Kind{AgentCrash, ClockSkew}}
	shrunk.setDefaults()
	sub := generate(&shrunk, window)

	var want []Event
	for _, ev := range all {
		if ev.Kind == AgentCrash || ev.Kind == ClockSkew {
			want = append(want, ev)
		}
	}
	if len(sub) != len(want) {
		t.Fatalf("shrunk timeline has %d events, want %d", len(sub), len(want))
	}
	for i := range sub {
		if sub[i] != want[i] {
			t.Fatalf("event %d reshuffled after shrink: %+v vs %+v", i, sub[i], want[i])
		}
	}
}

func TestParseKinds(t *testing.T) {
	for _, s := range []string{"", "all"} {
		ks, err := ParseKinds(s)
		if err != nil || len(ks) != int(NumKinds) {
			t.Fatalf("ParseKinds(%q) = %v, %v", s, ks, err)
		}
	}
	ks, err := ParseKinds("clock-skew, agent-crash")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatKinds(ks); got != "agent-crash,clock-skew" {
		t.Fatalf("FormatKinds = %q", got)
	}
	if _, err := ParseKinds("bogus"); err == nil {
		t.Fatal("ParseKinds accepted an unknown kind")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range []pipeline.Policy{pipeline.Block, pipeline.DropOldest, pipeline.DropNewest} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("lossy"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown policy")
	}
}

// TestReproArgs: the repro line round-trips the scenario's knobs.
func TestReproArgs(t *testing.T) {
	sc := Scenario{Seed: 9, Wire: true, NetworkFaults: true, Policy: pipeline.DropOldest, APIReaders: 64}
	sc.setDefaults()
	line := sc.ReproArgs()
	for _, frag := range []string{"-seed 9", "-windows 8", "-policy drop-oldest", "-wire", "-net-faults", "-api-readers 64"} {
		if !strings.Contains(line, frag) {
			t.Errorf("repro line %q missing %q", line, frag)
		}
	}
	if strings.Contains(Scenario{Seed: 9}.ReproArgs(), "api-readers") {
		t.Error("repro line mentions api-readers with none configured")
	}
}

// TestAPIReadersScenarioGreen: a reader fleet hammering the ops console
// (long-poll + SSE) while chaos runs must not trip any invariant — and,
// because readers only read, must not perturb the fingerprint either.
func TestAPIReadersScenarioGreen(t *testing.T) {
	quiet := mustRun(t, Scenario{Seed: 11})
	loud := mustRun(t, Scenario{Seed: 11, APIReaders: 50})
	assertGreen(t, loud)
	if quiet.Fingerprint != loud.Fingerprint {
		t.Fatalf("readers perturbed the run:\n  quiet: %s\n  loud:  %s",
			quiet.Fingerprint, loud.Fingerprint)
	}
}
