//go:build !chaosbreak

package chaos

import (
	"strings"
	"testing"
)

// TestFedScenarioGreen: the federated gauntlet — node partitions,
// coordinator kills and vote delays against a 3-node quorum-2
// federation — produces zero invariant violations and exercises every
// federation kind.
func TestFedScenarioGreen(t *testing.T) {
	res := mustRun(t, Scenario{Seed: 1, FedNodes: 3})
	assertGreen(t, res)
	if res.Windows != 10 { // 8 chaos + 2 recovery
		t.Fatalf("observed %d windows, want 10", res.Windows)
	}
	seen := map[Kind]bool{}
	for _, ev := range res.Events {
		seen[ev.Kind] = true
	}
	for _, k := range FedKinds() {
		if !seen[k] {
			t.Errorf("federation kind %s never scheduled", k)
		}
	}
	if len(res.LeaderHistory) != res.Windows {
		t.Fatalf("leader history has %d entries for %d windows", len(res.LeaderHistory), res.Windows)
	}
	if res.LeaderHistory[len(res.LeaderHistory)-1] < 0 {
		t.Fatalf("no committing leader in the final window: %v", res.LeaderHistory)
	}
}

// TestFedCoordinatorKillFailover: a scenario restricted to coordinator
// kills must actually depose the leader at least once — the leader
// history shows more than one distinct committing node.
func TestFedCoordinatorKillFailover(t *testing.T) {
	res := mustRun(t, Scenario{Seed: 6, Windows: 10, FedNodes: 3, Kinds: []Kind{CoordinatorKill}})
	assertGreen(t, res)
	leaders := map[int]bool{}
	for _, l := range res.LeaderHistory {
		if l >= 0 {
			leaders[l] = true
		}
	}
	if len(leaders) < 2 {
		t.Fatalf("coordinator kills never forced a failover: history %v", res.LeaderHistory)
	}
}

// TestFedDeterminismAcrossRuns: the same federated Scenario replayed is
// bit-identical — fingerprint (which folds the canonical log digest, the
// incident timeline digest, and the full leader history) and events.
func TestFedDeterminismAcrossRuns(t *testing.T) {
	sc := Scenario{Seed: 42, Windows: 8, FedNodes: 3}
	a := mustRun(t, sc)
	b := mustRun(t, sc)
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("fed fingerprints diverge:\n  a: %s\n  b: %s", a.Fingerprint, b.Fingerprint)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts diverge: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d diverges: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}

// TestFedReproArgs: the repro line carries the federation size and the
// federation kinds round-trip through ParseKinds.
func TestFedReproArgs(t *testing.T) {
	sc := Scenario{Seed: 9, FedNodes: 3}
	sc.setDefaults()
	if line := sc.ReproArgs(); !strings.Contains(line, "-fed-nodes 3") {
		t.Fatalf("repro line %q missing -fed-nodes", line)
	}
	ks, err := ParseKinds("node-partition,coordinator-kill,vote-delay")
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatKinds(ks); got != "node-partition,coordinator-kill,vote-delay" {
		t.Fatalf("FormatKinds = %q", got)
	}
}
