package chaos

import (
	"fmt"
	"strings"

	"rpingmesh/internal/ecmp"
	"rpingmesh/internal/sim"
	"rpingmesh/internal/simnet"
)

// QoS fault families: fabric-level multi-class pathologies played
// underneath the monitoring-stack chaos when the scenario enables a
// multi-class fabric (Scenario.QoSClasses > 1). Each family is the
// seeded, deterministic version of one production incident shape from
// the lossless-RoCE literature.
const (
	// QoSFaultPFCStorm incasts storage-class traffic until PFC pause
	// propagates upstream — the paper's PFC storm, scoped to one class.
	QoSFaultPFCStorm = "pfc-storm"
	// QoSFaultDSCPMismap remaps the GPU DSCP onto the storage class
	// mid-run (a switch QoS config error), so GPU traffic inherits the
	// storage class's congestion and pauses.
	QoSFaultDSCPMismap = "dscp-mismap"
	// QoSFaultCNPStarve congests the CNP priority itself, delaying every
	// flow's congestion feedback.
	QoSFaultCNPStarve = "cnp-starve"
	// QoSFaultIncast drives a mixed storage+GPU incast onto one host.
	QoSFaultIncast = "incast"
)

// QoSFaultKinds lists every QoS fault family in rotation order.
func QoSFaultKinds() []string {
	return []string{QoSFaultPFCStorm, QoSFaultDSCPMismap, QoSFaultCNPStarve, QoSFaultIncast}
}

// ParseQoSFault validates a QoS fault family name ("" = none).
func ParseQoSFault(s string) (string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", nil
	}
	for _, k := range QoSFaultKinds() {
		if k == s {
			return k, nil
		}
	}
	return "", fmt.Errorf("chaos: unknown qos fault %q (want %s)",
		s, strings.Join(QoSFaultKinds(), ","))
}

// qosDSCPs derives the scenario's class markings from its class count:
// storage rides class 1, GPU the next class up, CNPs the top class.
func qosDSCPs(classes int) (storage, gpu, cnp uint8) {
	storage = 8
	gpu = 8 * uint8(classes-2)
	if classes == 2 {
		gpu = 8 // two classes: storage and GPU share class 1
	}
	cnp = 8 * uint8(classes-1)
	return
}

// playQoSFault schedules the scenario's QoS fault family: onset after
// the first analysis window, unwound two windows before the horizon so
// the pre-recovery windows already observe a healing fabric.
func (h *harness) playQoSFault(horizon sim.Time) {
	onset := h.window
	clear := horizon - 2*h.window
	if clear <= onset {
		clear = onset + h.window
	}
	storageDSCP, gpuDSCP, cnpDSCP := qosDSCPs(h.sc.QoSClasses)

	tp := h.c.Topo
	victims := tp.RNICsUnderToR("tor-0-1")
	sources := tp.RNICsUnderToR("tor-0-0")
	dst := victims[0]

	addIncast := func(at, until sim.Time, dscp uint8, demand float64, portBase uint16) {
		h.c.Eng.At(at, func() {
			var ids []simnet.FlowID
			for i, s := range sources {
				f, err := h.c.Net.AddFlow(simnet.FlowSpec{
					Src: s, Dst: dst,
					Tuple:      ecmp.RoCETuple(tp.RNICs[s].IP, tp.RNICs[dst].IP, portBase+uint16(i)),
					DemandGbps: demand, DSCP: dscp,
				})
				if err != nil {
					continue
				}
				ids = append(ids, f.ID)
			}
			h.c.Eng.At(until, func() {
				for _, id := range ids {
					h.c.Net.RemoveFlow(id)
				}
			})
		})
	}

	switch h.sc.QoSFault {
	case QoSFaultPFCStorm:
		// Enough storage demand to pin the victim downlink past XOff and
		// hold it there: pause frames must climb toward the sources.
		addIncast(onset, clear, storageDSCP, 400, 41000)
	case QoSFaultDSCPMismap:
		storageClass := h.c.Net.ClassOf(storageDSCP)
		gpuClass := h.c.Net.ClassOf(gpuDSCP)
		addIncast(onset, clear, storageDSCP, 400, 42000)
		h.c.Eng.At(onset, func() { h.c.Net.RemapDSCP(gpuDSCP, storageClass) })
		h.c.Eng.At(clear, func() { h.c.Net.RemapDSCP(gpuDSCP, gpuClass) })
	case QoSFaultCNPStarve:
		// Congest the CNP priority itself alongside a storage incast:
		// feedback for the storage flows arrives late or not at all.
		addIncast(onset, clear, storageDSCP, 300, 43000)
		addIncast(onset, clear, cnpDSCP, 400, 43500)
	case QoSFaultIncast:
		addIncast(onset, clear, storageDSCP, 250, 44000)
		addIncast(onset, clear, gpuDSCP, 250, 44500)
	}
}

