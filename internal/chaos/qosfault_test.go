//go:build !chaosbreak

package chaos

import (
	"strings"
	"testing"
)

// TestQoSFaultFamiliesGreen: every QoS fault family runs on a
// multi-class fabric with zero invariant violations, and the repro line
// pins the QoS configuration.
func TestQoSFaultFamiliesGreen(t *testing.T) {
	for i, fault := range QoSFaultKinds() {
		fault := fault
		seed := int64(100 + i)
		t.Run(fault, func(t *testing.T) {
			sc := Scenario{Seed: seed, Windows: 6, QoSClasses: 4, QoSFault: fault, Localizer: "007"}
			res := mustRun(t, sc)
			assertGreen(t, res)
			repro := res.Scenario.ReproArgs()
			for _, want := range []string{"-qos-classes 4", "-qos-fault " + fault, "-localizer 007"} {
				if !strings.Contains(repro, want) {
					t.Fatalf("repro line %q missing %q", repro, want)
				}
			}
		})
	}
}

// TestQoSFaultDeterminism: a QoS-faulted multi-class scenario replays
// bit-identically — the per-class tick, pause propagation, and CNP
// delay model are all pure functions of the seed.
func TestQoSFaultDeterminism(t *testing.T) {
	sc := Scenario{Seed: 77, Windows: 5, QoSClasses: 4, QoSFault: QoSFaultPFCStorm}
	a := mustRun(t, sc)
	b := mustRun(t, sc)
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("fingerprints diverge:\n  a: %s\n  b: %s", a.Fingerprint, b.Fingerprint)
	}
}

func TestParseQoSFault(t *testing.T) {
	if _, err := ParseQoSFault("pfc-storm"); err != nil {
		t.Fatal(err)
	}
	if got, _ := ParseQoSFault(""); got != "" {
		t.Fatalf("empty fault parsed to %q", got)
	}
	if _, err := ParseQoSFault("nope"); err == nil {
		t.Fatal("bogus fault accepted")
	}
}
