package chaos

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"rpingmesh/internal/api"
	"rpingmesh/internal/core"
	"rpingmesh/internal/faultgen"
	"rpingmesh/internal/pipeline"
	"rpingmesh/internal/proto"
	"rpingmesh/internal/qos"
	"rpingmesh/internal/sim"
	"rpingmesh/internal/topo"
	"rpingmesh/internal/tsdb"
	"rpingmesh/internal/wire"
)

// maxViolations caps how many violations one scenario records — the
// first breach is the interesting one; the rest are usually cascade.
const maxViolations = 16

// harness is one scenario's live state: the cluster under test plus the
// bookkeeping every action and invariant reads.
type harness struct {
	sc     *Scenario
	c      *core.Cluster
	window sim.Time

	// Ops-console front door. Invariants drive it in-process through the
	// full middleware stack; with Scenario.APIReaders it is additionally
	// Started so real SSE sockets ride the listener. All range/quantile
	// reads go through a tsdb follower that catches up once per window.
	console  *api.Server
	follower *tsdb.Follower

	// ReaderStall's in-process stream-subscriber swarm: slow readers are
	// drained once per window (and must see every event in order);
	// stalled readers never read, so the hub must shed for them and
	// eventually evict them without ever blocking a publish.
	readers []*streamReader

	// Wire transport (Scenario.Wire only).
	srv *wire.Server
	cli *wire.Client

	inj *faultgen.Injector

	// Per-kind target-selection PRNGs, streams disjoint from the
	// schedule generator's.
	targets map[Kind]*rand.Rand

	crashed map[topo.HostID]bool

	stallActive bool
	floodSeq    uint64

	// Conservation tap: counts everything the pipeline delivered
	// downstream, independently of the pipeline's own accounting.
	tapBatches, tapResults uint64

	lastIndex  int
	violations []Violation

	goroutineBase, fdBase int
}

// violate records one invariant breach (capped).
func (h *harness) violate(name string, window int, format string, args ...any) {
	if len(h.violations) >= maxViolations {
		return
	}
	h.violations = append(h.violations, Violation{
		Invariant: name, Window: window, Detail: fmt.Sprintf(format, args...),
	})
}

// build wires the cluster, console, optional wire transport, and chaos
// bookkeeping for one scenario.
func build(sc *Scenario) (*harness, error) {
	pods := 1
	if sc.Shards > 1 {
		// Sharded runs need pod structure to partition along.
		pods = sc.Shards
	}
	tp, err := topo.BuildClos(topo.ClosConfig{
		Pods: pods, ToRsPerPod: 2, AggsPerPod: 2, Spines: 2,
		HostsPerToR: sc.HostsPerToR, RNICsPerHost: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: topology: %w", err)
	}
	h := &harness{
		sc:        sc,
		targets:   make(map[Kind]*rand.Rand),
		crashed:   make(map[topo.HostID]bool),
		lastIndex: -1,
	}
	for _, k := range AllKinds() {
		// Offset by NumKinds so target picks never replay the schedule
		// generator's stream.
		h.targets[k] = rand.New(rand.NewSource(kindSeed(sc.Seed, k+NumKinds)))
	}

	ccfg := core.Config{
		Topology:   tp,
		Seed:       sc.Seed,
		Shards:     sc.Shards,
		ShardEpoch: sc.ShardEpoch,
		Localizer:  sc.Localizer,
		Pipeline:   pipeline.Config{Policy: sc.Policy, Capacity: sc.Capacity},
		// Journal the primary so the console's follower can catch up by
		// delta instead of full snapshot every window.
		TSDB: tsdb.Config{JournalCapacity: 1 << 15},
	}
	if sc.QoSClasses > 1 {
		ccfg.Net.QoS = qos.Profile(sc.QoSClasses)
	}
	if sc.Wire {
		ccfg.WrapController = func(local proto.Controller) proto.Controller {
			h.srv, err = wire.Listen("127.0.0.1:0", local, nil)
			if err != nil {
				return local // surfaced below via h.srv == nil
			}
			h.cli, err = wire.Dial(h.srv.Addr())
			if err != nil {
				return local
			}
			return h.cli
		}
	}
	h.c, err = core.NewCluster(ccfg)
	if err != nil {
		return nil, fmt.Errorf("chaos: cluster: %w", err)
	}
	if sc.Wire && (h.srv == nil || h.cli == nil) {
		h.close()
		return nil, fmt.Errorf("chaos: wire transport failed to come up")
	}
	h.window = h.c.Analyzer.Window()

	h.c.TapUploads(func(b proto.UploadBatch) {
		h.tapBatches++
		h.tapResults += uint64(len(b.Results))
	})

	// The console is exercised in-process; the slow-consumer notifier is
	// the ReaderStall payload (it runs inside the alert engine's critical
	// section, exactly like a sluggish pager integration). Historical
	// reads are served from a follower replica, and the stream hubs are
	// kept deliberately tiny so shed/evict actually fires within a run.
	h.follower = tsdb.NewFollower(h.c.TSDB)
	h.console = api.New(api.Backend{
		Windows: h.c.Analyzer, TSDB: h.follower, Pipeline: h.c.Ingest, Alerts: h.c.Alerts,
	}, api.Config{
		Addr:   "127.0.0.1:0",
		Stream: api.HubConfig{QueueCap: 2, EvictShed: 4, Replay: 16},
	})
	h.c.Alerts.AddNotifier(h.stallNotifier())
	h.c.Alerts.AddNotifier(h.console.AlertNotifier())

	if sc.NetworkFaults {
		h.inj = faultgen.NewInjector(h.c, sc.Seed+7)
	}
	return h, nil
}

// close tears down the real-OS resources (console listener + stream
// hubs, wire sockets); the simulated cluster needs no teardown.
func (h *harness) close() {
	if h.console != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = h.console.Shutdown(ctx)
		cancel()
	}
	if h.cli != nil {
		_ = h.cli.Close()
		h.cli = nil
	}
	if h.srv != nil {
		_ = h.srv.Close()
		h.srv = nil
	}
}

// countFDs reports open file descriptors (Linux; -1 elsewhere).
func countFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// Run executes one scenario end to end and reports every invariant
// violation. The error return covers harness failures (topology, wire
// bring-up) only — invariant breaches land in Result.Violations.
func Run(sc Scenario) (*Result, error) {
	sc.setDefaults()
	if sc.FedNodes > 1 {
		return runFed(sc)
	}
	h, err := build(&sc)
	if err != nil {
		return nil, err
	}
	closed := false
	defer func() {
		if !closed {
			h.close()
		}
	}()

	// Leak baselines, captured after the wire transport is up so its
	// accept loop and session goroutines are part of the baseline. The
	// console listener and every API reader start *after* the baseline:
	// Shutdown must account for all of them or checkLeaks fails.
	h.goroutineBase = runtime.NumGoroutine()
	h.fdBase = countFDs()

	stopReaders := h.startReaders(sc.APIReaders)

	h.c.OnWindow(h.onWindow)
	h.c.StartAgents()

	events := generate(&sc, h.window)
	horizon := sim.Time(sc.Windows) * h.window
	for _, ev := range events {
		h.schedule(ev, horizon)
	}
	if sc.NetworkFaults {
		h.playNetworkFaults(horizon)
	}
	if sc.QoSFault != "" && sc.QoSClasses > 1 {
		h.playQoSFault(horizon)
	}

	h.c.Run(horizon)
	h.recover()
	h.c.Run(sim.Time(sc.RecoveryWindows) * h.window)
	h.checkRecovered()

	fingerprint := h.fingerprint()
	pstats := h.c.Ingest.Stats()

	// Leak checks run on a fully torn-down harness: readers stopped,
	// console hubs closed and streaming connections drained (the
	// Shutdown-drain contract under test), sockets closed.
	stopReaders()
	h.close()
	closed = true
	h.checkLeaks()

	return &Result{
		Scenario:    sc,
		Events:      events,
		Windows:     h.lastIndex + 1,
		Violations:  h.violations,
		Pipeline:    pstats,
		Fingerprint: fingerprint,
	}, nil
}

// playNetworkFaults composes a faultgen schedule underneath the chaos:
// the fabric misbehaves while the monitoring stack is being broken.
func (h *harness) playNetworkFaults(horizon sim.Time) {
	// Rates sized for a few events per run over a minutes-scale horizon.
	perHour := float64(sim.Hour) / float64(horizon) // ≈1 event per cause
	sched := h.inj.GenerateSchedule(faultgen.ScheduleConfig{
		Duration: horizon,
		EventsPerHour: map[faultgen.Cause]float64{
			faultgen.FlappingPort:      perHour,
			faultgen.PacketCorruption:  perHour,
			faultgen.RNICDown:          perHour * 2,
			faultgen.CPUOverload:       perHour,
			faultgen.UnevenLoadBalance: perHour,
		},
		MeanFaultDuration: 2 * h.window,
	})
	h.inj.Play(sched)
}

// recover unwinds anything still broken at the horizon so the recovery
// windows measure a system that is allowed to heal: restart crashed
// agents, clear lingering network faults. Scheduled unwinds are capped
// at the horizon, so this is a safety net, not the primary path.
func (h *harness) recover() {
	hosts := make([]topo.HostID, 0, len(h.crashed))
	for hid, down := range h.crashed {
		if down {
			hosts = append(hosts, hid)
		}
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	for _, hid := range hosts {
		h.restartAgent(hid)
	}
	if h.inj != nil {
		h.inj.ClearAll()
	}
}

// checkRecovered asserts the end-of-run health the soak story promises:
// every agent back up, the console still answering, the final window
// analyzed on schedule.
func (h *harness) checkRecovered() {
	win := h.lastIndex
	for hid, down := range h.crashed {
		if down {
			h.violate("recovery", win, "agent %s still down after recovery phase", hid)
		}
	}
	if err := h.console.Check("/healthz", 0); err != nil {
		h.violate("recovery", win, "post-recovery healthz: %v", err)
	}
	want := h.sc.Windows + h.sc.RecoveryWindows
	if got := h.c.Analyzer.TotalWindows(); got != want {
		h.violate("recovery", win, "analyzer ran %d windows, want %d", got, want)
	}
}

// checkLeaks compares goroutine and FD counts against the baselines.
// Goroutines get a settle loop: wire session handlers need a moment to
// observe their closed sockets.
func (h *harness) checkLeaks() {
	const slack = 2
	ok := false
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= h.goroutineBase+slack {
			ok = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !ok {
		h.violate("goroutine-leak", h.lastIndex, "goroutines %d > baseline %d+%d after teardown",
			runtime.NumGoroutine(), h.goroutineBase, slack)
	}
	if h.fdBase >= 0 {
		if fds := countFDs(); fds > h.fdBase+slack {
			h.violate("fd-leak", h.lastIndex, "fds %d > baseline %d+%d after teardown",
				fds, h.fdBase, slack)
		}
	}
}

// streamReader is one in-process hub subscriber from the ReaderStall
// swarm. Slow readers drain once per window and must observe strictly
// increasing sequence numbers; stalled readers never read at all.
type streamReader struct {
	sub     *api.Subscriber
	lastSeq uint64
	stalled bool
}

// maxSwarm bounds the ReaderStall swarm across repeated events.
const maxSwarm = 16

// spawnReaderSwarm subscribes a batch of stalled and slow readers to
// both stream hubs. Runs inside an engine callback, so subscribe order
// (and hence subscriber IDs within the swarm) is deterministic.
func (h *harness) spawnReaderSwarm() {
	for _, hub := range []*api.Hub{h.console.WindowStream(), h.console.IncidentStream()} {
		for _, stalled := range []bool{true, false} {
			if len(h.readers) >= maxSwarm {
				return
			}
			name := fmt.Sprintf("chaos-slow-%d", len(h.readers))
			if stalled {
				name = fmt.Sprintf("chaos-stalled-%d", len(h.readers))
			}
			sub := hub.Subscribe(name)
			if sub == nil {
				return // hubs already closed (teardown)
			}
			h.readers = append(h.readers, &streamReader{sub: sub, stalled: stalled})
		}
	}
}

// drainReaders advances every slow swarm reader to the live edge and
// checks delivery order: each must see strictly increasing seqs.
// Stalled readers are left alone — shedding for them is the point.
func (h *harness) drainReaders(win int) {
	for _, r := range h.readers {
		if r.stalled {
			continue
		}
		for {
			ev, ok := r.sub.TryNext()
			if !ok {
				break
			}
			if ev.Seq <= r.lastSeq {
				h.violate("stream-accounting", win,
					"slow reader %d delivered seq %d after %d (order violated)",
					r.sub.ID(), ev.Seq, r.lastSeq)
			}
			r.lastSeq = ev.Seq
		}
	}
}

// startReaders launches n concurrent console readers: in-process
// point-query and long-poll loops through the full middleware stack,
// plus up to 16 real SSE sockets over a live listener. The returned
// stop function halts the loops, shuts the console down (closing the
// hubs, which is what drains every SSE handler), and joins everything —
// it must run before checkLeaks. With n == 0 it only shuts the console
// down.
func (h *harness) startReaders(n int) (stop func()) {
	shutdown := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = h.console.Shutdown(ctx)
		cancel()
	}
	if n <= 0 {
		return shutdown
	}

	stopCh := make(chan struct{})
	var wg sync.WaitGroup

	// Bulk readers stay in-process: full middleware, no socket cost, so
	// thousands can run concurrently with the engine.
	paths := []string{
		"/api/stream/windows?since=0&wait_ms=5",
		"/api/stream/incidents?since=0&wait_ms=5",
		"/healthz", "/api/incidents", "/api/windows/latest",
		"/api/series", "/api/alerts/stats", "/api/pipeline/stats",
	}
	for i := 0; i < n; i++ {
		p := paths[i%len(paths)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopCh:
					return
				default:
				}
				// Status is deliberately ignored: 404 before the first
				// window is fine; what's under test is that concurrent
				// reads never wedge or leak. The pause keeps a 1000-reader
				// fleet from starving the engine of CPU.
				_ = h.console.Check(p, 0)
				time.Sleep(10 * time.Millisecond)
			}
		}()
	}

	// A capped set of real SSE sockets over the live listener. They exit
	// when Shutdown closes the hubs (handler returns → body EOF).
	client := &http.Client{Timeout: 30 * time.Second}
	if err := h.console.Start(); err == nil {
		sse := n
		if sse > 16 {
			sse = 16
		}
		streams := []string{"/api/stream/windows", "/api/stream/incidents"}
		for i := 0; i < sse; i++ {
			url := "http://" + h.console.Addr() + streams[i%len(streams)]
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, err := client.Get(url)
				if err != nil {
					return
				}
				defer resp.Body.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := resp.Body.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}

	return func() {
		close(stopCh)
		shutdown() // hub close is what unblocks the SSE readers
		wg.Wait()
		client.CloseIdleConnections()
	}
}

// fingerprint folds the run's observable outcomes into one line; two
// runs of the same Scenario must match bit for bit.
func (h *harness) fingerprint() string {
	ps := h.c.Ingest.Stats()
	as := h.c.Alerts.Stats()
	rep, _ := h.c.Analyzer.LastReport()
	return fmt.Sprintf("windows=%d pipe[in=%d out=%d del=%d drop=%d shed=%d waits=%d] alert[open=%d reopen=%d resolve=%d supp=%d] last[idx=%d probes=%d problems=%d] tap[b=%d r=%d] viol=%d",
		h.c.Analyzer.TotalWindows(),
		ps.Enqueued, ps.Dequeued, ps.Delivered, ps.Dropped(), ps.ResultsShed, ps.BlockWaits,
		as.Opened, as.Reopened, as.Resolved, as.Suppressed,
		rep.Index, rep.Cluster.Probes, len(rep.Problems),
		h.tapBatches, h.tapResults, len(h.violations))
}
