package chaos

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"rpingmesh/internal/api"
	"rpingmesh/internal/core"
	"rpingmesh/internal/faultgen"
	"rpingmesh/internal/pipeline"
	"rpingmesh/internal/proto"
	"rpingmesh/internal/qos"
	"rpingmesh/internal/sim"
	"rpingmesh/internal/topo"
	"rpingmesh/internal/wire"
)

// maxViolations caps how many violations one scenario records — the
// first breach is the interesting one; the rest are usually cascade.
const maxViolations = 16

// harness is one scenario's live state: the cluster under test plus the
// bookkeeping every action and invariant reads.
type harness struct {
	sc     *Scenario
	c      *core.Cluster
	window sim.Time

	// Ops-console front door, never Started — invariants drive it
	// in-process through the full middleware stack.
	console *api.Server

	// Wire transport (Scenario.Wire only).
	srv *wire.Server
	cli *wire.Client

	inj *faultgen.Injector

	// Per-kind target-selection PRNGs, streams disjoint from the
	// schedule generator's.
	targets map[Kind]*rand.Rand

	crashed map[topo.HostID]bool

	stallActive bool
	floodSeq    uint64

	// Conservation tap: counts everything the pipeline delivered
	// downstream, independently of the pipeline's own accounting.
	tapBatches, tapResults uint64

	lastIndex  int
	violations []Violation

	goroutineBase, fdBase int
}

// violate records one invariant breach (capped).
func (h *harness) violate(name string, window int, format string, args ...any) {
	if len(h.violations) >= maxViolations {
		return
	}
	h.violations = append(h.violations, Violation{
		Invariant: name, Window: window, Detail: fmt.Sprintf(format, args...),
	})
}

// build wires the cluster, console, optional wire transport, and chaos
// bookkeeping for one scenario.
func build(sc *Scenario) (*harness, error) {
	pods := 1
	if sc.Shards > 1 {
		// Sharded runs need pod structure to partition along.
		pods = sc.Shards
	}
	tp, err := topo.BuildClos(topo.ClosConfig{
		Pods: pods, ToRsPerPod: 2, AggsPerPod: 2, Spines: 2,
		HostsPerToR: sc.HostsPerToR, RNICsPerHost: 1,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: topology: %w", err)
	}
	h := &harness{
		sc:        sc,
		targets:   make(map[Kind]*rand.Rand),
		crashed:   make(map[topo.HostID]bool),
		lastIndex: -1,
	}
	for _, k := range AllKinds() {
		// Offset by NumKinds so target picks never replay the schedule
		// generator's stream.
		h.targets[k] = rand.New(rand.NewSource(kindSeed(sc.Seed, k+NumKinds)))
	}

	ccfg := core.Config{
		Topology:   tp,
		Seed:       sc.Seed,
		Shards:     sc.Shards,
		ShardEpoch: sc.ShardEpoch,
		Localizer:  sc.Localizer,
		Pipeline:   pipeline.Config{Policy: sc.Policy, Capacity: sc.Capacity},
	}
	if sc.QoSClasses > 1 {
		ccfg.Net.QoS = qos.Profile(sc.QoSClasses)
	}
	if sc.Wire {
		ccfg.WrapController = func(local proto.Controller) proto.Controller {
			h.srv, err = wire.Listen("127.0.0.1:0", local, nil)
			if err != nil {
				return local // surfaced below via h.srv == nil
			}
			h.cli, err = wire.Dial(h.srv.Addr())
			if err != nil {
				return local
			}
			return h.cli
		}
	}
	h.c, err = core.NewCluster(ccfg)
	if err != nil {
		return nil, fmt.Errorf("chaos: cluster: %w", err)
	}
	if sc.Wire && (h.srv == nil || h.cli == nil) {
		h.close()
		return nil, fmt.Errorf("chaos: wire transport failed to come up")
	}
	h.window = h.c.Analyzer.Window()

	h.c.TapUploads(func(b proto.UploadBatch) {
		h.tapBatches++
		h.tapResults += uint64(len(b.Results))
	})

	// The console is exercised in-process; the slow-consumer notifier is
	// the ReaderStall payload (it runs inside the alert engine's critical
	// section, exactly like a sluggish pager integration).
	h.console = api.New(api.Backend{
		Windows: h.c.Analyzer, TSDB: h.c.TSDB, Pipeline: h.c.Ingest, Alerts: h.c.Alerts,
	}, api.Config{})
	h.c.Alerts.AddNotifier(h.stallNotifier())

	if sc.NetworkFaults {
		h.inj = faultgen.NewInjector(h.c, sc.Seed+7)
	}
	return h, nil
}

// close tears down the real-OS resources (wire sockets); the simulated
// cluster needs no teardown.
func (h *harness) close() {
	if h.cli != nil {
		_ = h.cli.Close()
		h.cli = nil
	}
	if h.srv != nil {
		_ = h.srv.Close()
		h.srv = nil
	}
}

// countFDs reports open file descriptors (Linux; -1 elsewhere).
func countFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// Run executes one scenario end to end and reports every invariant
// violation. The error return covers harness failures (topology, wire
// bring-up) only — invariant breaches land in Result.Violations.
func Run(sc Scenario) (*Result, error) {
	sc.setDefaults()
	if sc.FedNodes > 1 {
		return runFed(sc)
	}
	h, err := build(&sc)
	if err != nil {
		return nil, err
	}
	closed := false
	defer func() {
		if !closed {
			h.close()
		}
	}()

	// Leak baselines, captured after the wire transport is up so its
	// accept loop and session goroutines are part of the baseline.
	h.goroutineBase = runtime.NumGoroutine()
	h.fdBase = countFDs()

	h.c.OnWindow(h.onWindow)
	h.c.StartAgents()

	events := generate(&sc, h.window)
	horizon := sim.Time(sc.Windows) * h.window
	for _, ev := range events {
		h.schedule(ev, horizon)
	}
	if sc.NetworkFaults {
		h.playNetworkFaults(horizon)
	}
	if sc.QoSFault != "" && sc.QoSClasses > 1 {
		h.playQoSFault(horizon)
	}

	h.c.Run(horizon)
	h.recover()
	h.c.Run(sim.Time(sc.RecoveryWindows) * h.window)
	h.checkRecovered()

	fingerprint := h.fingerprint()
	pstats := h.c.Ingest.Stats()

	// Leak checks run on a fully torn-down harness: sockets closed,
	// session goroutines drained.
	h.close()
	closed = true
	h.checkLeaks()

	return &Result{
		Scenario:    sc,
		Events:      events,
		Windows:     h.lastIndex + 1,
		Violations:  h.violations,
		Pipeline:    pstats,
		Fingerprint: fingerprint,
	}, nil
}

// playNetworkFaults composes a faultgen schedule underneath the chaos:
// the fabric misbehaves while the monitoring stack is being broken.
func (h *harness) playNetworkFaults(horizon sim.Time) {
	// Rates sized for a few events per run over a minutes-scale horizon.
	perHour := float64(sim.Hour) / float64(horizon) // ≈1 event per cause
	sched := h.inj.GenerateSchedule(faultgen.ScheduleConfig{
		Duration: horizon,
		EventsPerHour: map[faultgen.Cause]float64{
			faultgen.FlappingPort:      perHour,
			faultgen.PacketCorruption:  perHour,
			faultgen.RNICDown:          perHour * 2,
			faultgen.CPUOverload:       perHour,
			faultgen.UnevenLoadBalance: perHour,
		},
		MeanFaultDuration: 2 * h.window,
	})
	h.inj.Play(sched)
}

// recover unwinds anything still broken at the horizon so the recovery
// windows measure a system that is allowed to heal: restart crashed
// agents, clear lingering network faults. Scheduled unwinds are capped
// at the horizon, so this is a safety net, not the primary path.
func (h *harness) recover() {
	hosts := make([]topo.HostID, 0, len(h.crashed))
	for hid, down := range h.crashed {
		if down {
			hosts = append(hosts, hid)
		}
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	for _, hid := range hosts {
		h.restartAgent(hid)
	}
	if h.inj != nil {
		h.inj.ClearAll()
	}
}

// checkRecovered asserts the end-of-run health the soak story promises:
// every agent back up, the console still answering, the final window
// analyzed on schedule.
func (h *harness) checkRecovered() {
	win := h.lastIndex
	for hid, down := range h.crashed {
		if down {
			h.violate("recovery", win, "agent %s still down after recovery phase", hid)
		}
	}
	if err := h.console.Check("/healthz", 0); err != nil {
		h.violate("recovery", win, "post-recovery healthz: %v", err)
	}
	want := h.sc.Windows + h.sc.RecoveryWindows
	if got := h.c.Analyzer.TotalWindows(); got != want {
		h.violate("recovery", win, "analyzer ran %d windows, want %d", got, want)
	}
}

// checkLeaks compares goroutine and FD counts against the baselines.
// Goroutines get a settle loop: wire session handlers need a moment to
// observe their closed sockets.
func (h *harness) checkLeaks() {
	const slack = 2
	ok := false
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= h.goroutineBase+slack {
			ok = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !ok {
		h.violate("goroutine-leak", h.lastIndex, "goroutines %d > baseline %d+%d after teardown",
			runtime.NumGoroutine(), h.goroutineBase, slack)
	}
	if h.fdBase >= 0 {
		if fds := countFDs(); fds > h.fdBase+slack {
			h.violate("fd-leak", h.lastIndex, "fds %d > baseline %d+%d after teardown",
				fds, h.fdBase, slack)
		}
	}
}

// fingerprint folds the run's observable outcomes into one line; two
// runs of the same Scenario must match bit for bit.
func (h *harness) fingerprint() string {
	ps := h.c.Ingest.Stats()
	as := h.c.Alerts.Stats()
	rep, _ := h.c.Analyzer.LastReport()
	return fmt.Sprintf("windows=%d pipe[in=%d out=%d del=%d drop=%d shed=%d waits=%d] alert[open=%d reopen=%d resolve=%d supp=%d] last[idx=%d probes=%d problems=%d] tap[b=%d r=%d] viol=%d",
		h.c.Analyzer.TotalWindows(),
		ps.Enqueued, ps.Dequeued, ps.Delivered, ps.Dropped(), ps.ResultsShed, ps.BlockWaits,
		as.Opened, as.Reopened, as.Resolved, as.Suppressed,
		rep.Index, rep.Cluster.Probes, len(rep.Problems),
		h.tapBatches, h.tapResults, len(h.violations))
}
