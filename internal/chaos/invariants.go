package chaos

import (
	"rpingmesh/internal/analyzer"
	"rpingmesh/internal/api"
)

// onWindow is the invariant sweep, run from core.Cluster.OnWindow after
// every analysis window has closed and folded into the incident engine.
// It first advances the serving tier — publishes the window into the
// stream hub, catches the tsdb follower up, drains the slow half of the
// reader swarm — then audits everything. Each checker is cheap enough to
// run every window of every scenario; ReaderStall additionally turns the
// API checks into heavy queries.
func (h *harness) onWindow(rep analyzer.WindowReport) {
	h.console.PublishWindow(rep)
	h.follower.CatchUp()
	h.drainReaders(rep.Index)

	h.checkWindowSeq(rep)
	h.checkPipelineAccounting(rep.Index)
	h.checkAnalyzerBacklog(rep.Index)
	h.checkAlertConsistency(rep.Index)
	h.checkTSDBSeams(rep)
	h.checkTSDBBudget(rep.Index)
	h.checkAPIHealth(rep.Index)
	h.checkStreamAccounting(rep.Index)
}

// checkWindowSeq: window sequence numbers are gapless and monotonic —
// index k is the k-th Tick ever run, no window is skipped or repeated no
// matter how hard the stack is being shaken.
func (h *harness) checkWindowSeq(rep analyzer.WindowReport) {
	if rep.Index != h.lastIndex+1 {
		h.violate("window-seq", rep.Index,
			"window index %d follows %d (want %d)", rep.Index, h.lastIndex, h.lastIndex+1)
	}
	if h.lastIndex < rep.Index {
		h.lastIndex = rep.Index
	}
}

// checkPipelineAccounting: the ingest tier's conservation law holds
// exactly — per partition, enqueued = dequeued + dropped-oldest + depth —
// and the harness's own tap agrees with the pipeline's delivery
// counters. This is the invariant the chaosbreak build tag sabotages.
func (h *harness) checkPipelineAccounting(win int) {
	st := h.c.Ingest.Stats()
	if err := st.AccountingError(); err != nil {
		h.violate("pipeline-accounting", win, "%v", err)
	}
	if h.tapBatches != st.Delivered {
		h.violate("pipeline-accounting", win,
			"tap saw %d batches, pipeline claims %d delivered", h.tapBatches, st.Delivered)
	}
	if h.tapResults != st.ResultsDelivered {
		h.violate("pipeline-accounting", win,
			"tap saw %d results, pipeline claims %d delivered", h.tapResults, st.ResultsDelivered)
	}
}

// checkAnalyzerBacklog: windows close on complete data. The cluster
// drains the ingest tier before every Tick, so by the time this hook
// runs the analyzer must hold zero undigested results.
func (h *harness) checkAnalyzerBacklog(win int) {
	if n := h.c.Analyzer.PendingResults(); n != 0 {
		h.violate("analyzer-backlog", win,
			"%d results still pending after window closed", n)
	}
}

// checkAlertConsistency: the incident engine's structural audit — at
// most one active incident per (entity, class), legal states, unique
// IDs, bounded history.
func (h *harness) checkAlertConsistency(win int) {
	if err := h.c.Alerts.CheckInvariants(); err != nil {
		h.violate("alert-consistency", win, "%v", err)
	}
}

// checkTSDBSeams: a full-horizon Range over every series must read
// cleanly across the raw→window→coarse tier seams — timestamps
// non-decreasing and in-bounds, the newest point agreeing with Latest,
// and Quantile answering whenever Range is non-empty.
func (h *harness) checkTSDBSeams(rep analyzer.WindowReport) {
	win := rep.Index
	for _, name := range h.c.TSDB.Series() {
		pts := h.c.TSDB.Range(name, 0, rep.End)
		for i, p := range pts {
			if p.T < 0 || p.T > rep.End {
				h.violate("tsdb-seams", win, "series %q point %d at t=%d outside [0,%d]",
					name, i, int64(p.T), int64(rep.End))
				break
			}
			if i > 0 && p.T < pts[i-1].T {
				h.violate("tsdb-seams", win, "series %q timestamps regress at point %d (%d < %d)",
					name, i, int64(p.T), int64(pts[i-1].T))
				break
			}
		}
		if last, ok := h.c.TSDB.Latest(name); ok {
			if len(pts) == 0 {
				h.violate("tsdb-seams", win, "series %q has Latest but empty full-horizon Range", name)
			} else if tail := pts[len(pts)-1]; tail != last {
				h.violate("tsdb-seams", win,
					"series %q Range tail (t=%d v=%g) disagrees with Latest (t=%d v=%g)",
					name, int64(tail.T), tail.V, int64(last.T), last.V)
			}
		}
		if len(pts) > 0 {
			if _, ok := h.c.TSDB.Quantile(name, 0, rep.End, 0.5); !ok {
				h.violate("tsdb-seams", win, "series %q Quantile not ok over non-empty range", name)
			}
		}
	}
}

// checkTSDBBudget: the sketch tier's memory contract — total sketch
// bytes never exceed live sketch series × the configured per-series
// budget, no matter how many records a pipeline-flood pushes through
// ingest. Sketch buffers are allocated once at a size derived from the
// budget, so a violation means the ladder grew past its cap.
func (h *harness) checkTSDBBudget(win int) {
	st := h.c.TSDB.Stats()
	if st.SketchBudgetPerSeries <= 0 {
		h.violate("tsdb-budget", win, "no sketch byte budget configured")
		return
	}
	if limit := st.SketchSeries * st.SketchBudgetPerSeries; st.SketchBytes > limit {
		h.violate("tsdb-budget", win,
			"sketch tier holds %d bytes across %d series, budget %d (%d/series)",
			st.SketchBytes, st.SketchSeries, limit, st.SketchBudgetPerSeries)
	}
}

// checkStreamAccounting: the serving tier's conservation laws, the
// eighth invariant. For every subscriber either hub has ever had — live,
// departed, or force-evicted — the exact law
//
//	published = delivered + shed + queued
//
// must hold, no queue may exceed its bound, an evicted reader must
// actually have shed its way past the threshold, and the follower the
// console reads from must be fully caught up with the primary (zero lag
// and per-series Latest agreement) after the per-window CatchUp. The
// stalled half of the reader swarm guarantees shedding and eviction
// really happen; that every window still publishes and every checker
// still answers proves eviction never blocks the publisher.
func (h *harness) checkStreamAccounting(win int) {
	for _, hub := range []struct {
		name string
		st   api.HubStats
	}{
		{"windows", h.console.WindowStream().Stats()},
		{"incidents", h.console.IncidentStream().Stats()},
	} {
		for _, group := range [][]api.SubscriberStats{hub.st.Subs, hub.st.Departed} {
			for _, ss := range group {
				if ss.Published != ss.Delivered+ss.Shed+uint64(ss.Queued) {
					h.violate("stream-accounting", win,
						"%s hub sub %d (%s): published %d != delivered %d + shed %d + queued %d",
						hub.name, ss.ID, ss.Name, ss.Published, ss.Delivered, ss.Shed, ss.Queued)
				}
				if ss.Queued > hub.st.QueueCap {
					h.violate("stream-accounting", win,
						"%s hub sub %d (%s): queued %d exceeds cap %d",
						hub.name, ss.ID, ss.Name, ss.Queued, hub.st.QueueCap)
				}
				if ss.Evicted && ss.Shed == 0 {
					h.violate("stream-accounting", win,
						"%s hub sub %d (%s): evicted without shedding", hub.name, ss.ID, ss.Name)
				}
			}
		}
	}

	if lag := h.follower.Lag(); lag != 0 {
		h.violate("follower-lag", win,
			"follower lags %d journal entries right after CatchUp", lag)
	}
	for _, name := range h.c.TSDB.Series() {
		pp, pok := h.c.TSDB.Latest(name)
		fp, fok := h.follower.Latest(name)
		if pok != fok || pp != fp {
			h.violate("follower-lag", win,
				"series %q: follower Latest (t=%d v=%g ok=%t) != primary (t=%d v=%g ok=%t)",
				name, int64(fp.T), fp.V, fok, int64(pp.T), pp.V, pok)
		}
	}
}

// checkAPIHealth: the ops console answers through its full middleware
// stack every window — /healthz is the paper's liveness contract, and a
// read of the incident list must never 5xx. Under ReaderStall the sweep
// widens to the heavy endpoints so stalled readers and the timeout
// middleware get exercised while chaos is live.
func (h *harness) checkAPIHealth(win int) {
	paths := []string{"/healthz", "/api/incidents"}
	if h.stallActive {
		paths = append(paths,
			"/api/windows/latest", "/api/alerts/stats",
			"/api/pipeline/stats", "/api/series", "/api/metrics")
	}
	for _, p := range paths {
		if err := h.console.Check(p, 0); err != nil {
			h.violate("api-health", win, "%v", err)
		}
	}
}
