package fed

import (
	"strings"
	"testing"

	"rpingmesh/internal/analyzer"
	"rpingmesh/internal/proto"
)

const testSecret = 0xdecafbad

func testBatch(node, window int, entities ...string) proto.VoteBatch {
	b := proto.VoteBatch{
		Node: node, Window: window, Proto: proto.FedVersion,
		Version: uint64(window + 1),
	}
	for _, e := range entities {
		v := proto.ProblemVote{
			Node: node, Window: window, Entity: e,
			Class: int(analyzer.ProblemSwitchLink), Severity: 2,
			Count: 1, Evidence: 3, Version: b.Version,
		}
		v.Sig = SignVote(testSecret, v)
		b.Votes = append(b.Votes, v)
		b.Covered = append(b.Covered, proto.CoverClaim{Entity: e, Class: int(analyzer.ProblemSwitchLink)})
	}
	sortVotes(b.Votes)
	sortClaims(b.Covered)
	b.Sig = SignBatch(testSecret, b)
	return b
}

func testReplica() *Replica {
	return NewReplica(Config{Nodes: 3, Quorum: 2, Secret: testSecret}, 0)
}

func TestReplicaQuorumRule(t *testing.T) {
	r := testReplica()
	// Window 0: only node 0 votes; nodes 1 and 2 cover the entity but
	// stay silent — below quorum, no incident.
	b0 := testBatch(0, 0, "link:7")
	b1 := testBatch(1, 0)
	b1.Covered = []proto.CoverClaim{{Entity: "link:7", Class: int(analyzer.ProblemSwitchLink)}}
	b1.Sig = SignBatch(testSecret, b1)
	b2 := testBatch(2, 0)
	b2.Covered = []proto.CoverClaim{{Entity: "link:7", Class: int(analyzer.ProblemSwitchLink)}}
	b2.Sig = SignBatch(testSecret, b2)
	if _, err := r.Commit(0, 0, []proto.VoteBatch{b0, b1, b2}); err != nil {
		t.Fatal(err)
	}
	if got := len(r.Timeline()); got != 0 {
		t.Fatalf("single vote among three covering nodes opened an incident: %v", r.Timeline())
	}

	// Window 1: a second node votes — quorum met, incident opens.
	if _, err := r.Commit(0, 1, []proto.VoteBatch{testBatch(0, 1, "link:7"), testBatch(1, 1, "link:7")}); err != nil {
		t.Fatal(err)
	}
	tl := r.Timeline()
	if len(tl) != 1 || !strings.Contains(tl[0], "open") || !strings.Contains(tl[0], "link:7") {
		t.Fatalf("quorum votes did not open exactly one incident: %v", tl)
	}
	if r.VotesCounted() != 3 {
		t.Fatalf("VotesCounted = %d, want 3", r.VotesCounted())
	}
}

func TestReplicaRejectsTamperedBatch(t *testing.T) {
	r := testReplica()
	b := testBatch(0, 0, "link:1")
	b.Votes[0].Severity = 3 // tamper after signing
	if _, err := r.Commit(0, 0, []proto.VoteBatch{b}); err != nil {
		t.Fatal(err)
	}
	if d := r.Drops(); d.Rejected != 1 {
		t.Fatalf("tampered batch not rejected: %+v", d)
	}
	if r.VotesCounted() != 0 {
		t.Fatal("tampered vote was counted")
	}

	// A vote claiming another node's identity inside a batch must fail
	// verification outright.
	b2 := testBatch(0, 1, "link:1")
	b2.Votes[0].Node = 1
	b2.Votes[0].Sig = SignVote(testSecret, b2.Votes[0])
	b2.Sig = SignBatch(testSecret, b2)
	if err := VerifyBatch(testSecret, b2); err == nil {
		t.Fatal("batch smuggling another node's vote verified")
	}
}

func TestReplicaDedupAndExpiry(t *testing.T) {
	r := testReplica()
	b := testBatch(0, 0, "link:1")
	if _, err := r.Commit(0, 0, []proto.VoteBatch{b}); err != nil {
		t.Fatal(err)
	}
	// Same (node, window) again — a retransmission — must dedup.
	if _, err := r.Commit(0, 1, []proto.VoteBatch{b}); err != nil {
		t.Fatal(err)
	}
	if d := r.Drops(); d.Deduped != 1 {
		t.Fatalf("retransmitted batch not deduped: %+v", d)
	}

	// A batch older than the overlap horizon must be expired, not folded.
	old := testBatch(1, 0, "link:2")
	if _, err := r.Commit(0, 10, []proto.VoteBatch{old}); err != nil {
		t.Fatal(err)
	}
	if d := r.Drops(); d.Expired != 1 {
		t.Fatalf("stale batch not expired: %+v", d)
	}
	if r.VotesCounted() != 1 {
		t.Fatalf("VotesCounted = %d, want 1 (only the first commit)", r.VotesCounted())
	}
}

func TestReplicaChainVerification(t *testing.T) {
	r := testReplica()
	rd1, err := r.Commit(0, 0, []proto.VoteBatch{testBatch(0, 0, "link:1")})
	if err != nil {
		t.Fatal(err)
	}
	rd2, err := r.Commit(0, 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	follower := testReplica()
	// Gap: applying round 2 before round 1 must fail without mutating.
	if err := follower.Apply(rd2); err == nil {
		t.Fatal("gap apply succeeded")
	}
	if follower.AppliedSeq() != 0 {
		t.Fatal("failed apply mutated state")
	}
	if err := follower.Apply(rd1); err != nil {
		t.Fatal(err)
	}
	// Tampered digest must fail.
	bad := rd2
	bad.Digest ^= 1
	if err := follower.Apply(bad); err == nil {
		t.Fatal("tampered round applied")
	}
	if err := follower.Apply(rd2); err != nil {
		t.Fatal(err)
	}
	if follower.Digest() != r.Digest() || follower.AppliedSeq() != r.AppliedSeq() {
		t.Fatal("follower did not converge to leader log")
	}
	// Replay of an already-applied round must fail (seq does not extend).
	if err := follower.Apply(rd1); err == nil {
		t.Fatal("replayed round applied twice")
	}
}

func TestReplicaRoundsSince(t *testing.T) {
	r := testReplica()
	for w := 0; w < 5; w++ {
		if _, err := r.Commit(0, w, nil); err != nil {
			t.Fatal(err)
		}
	}
	rounds := r.RoundsSince(2)
	if len(rounds) != 3 || rounds[0].Seq != 3 || rounds[2].Seq != 5 {
		t.Fatalf("RoundsSince(2) = %d rounds, first seq %d", len(rounds), rounds[0].Seq)
	}
	if r.RoundsSince(5) != nil {
		t.Fatal("RoundsSince(head) should be nil")
	}

	// A caught-up follower replaying the suffix converges.
	f := testReplica()
	for _, rd := range r.RoundsSince(0) {
		if err := f.Apply(rd); err != nil {
			t.Fatal(err)
		}
	}
	if f.Digest() != r.Digest() {
		t.Fatal("suffix replay diverged")
	}
}

// TestReplicaQuorumClampsToCoverage: when only one node covers an
// entity, its lone vote must open the incident (need = min(Q, cover)).
func TestReplicaQuorumClampsToCoverage(t *testing.T) {
	r := testReplica()
	if _, err := r.Commit(0, 0, []proto.VoteBatch{testBatch(2, 0, "dev:lonely")}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range r.Timeline() {
		if strings.Contains(l, "open") && strings.Contains(l, "dev:lonely") {
			found = true
		}
	}
	if !found {
		t.Fatalf("single-coverage entity never opened: %v", r.Timeline())
	}
}
