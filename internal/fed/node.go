package fed

import (
	"fmt"
	"sort"
	"sync"

	"rpingmesh/internal/alert"
	"rpingmesh/internal/analyzer"
	"rpingmesh/internal/api"
	"rpingmesh/internal/core"
	"rpingmesh/internal/proto"
	"rpingmesh/internal/topo"
)

// Node is one federation peer: a full core.Cluster replica of the shared
// fabric probing only its own pod shard, the vote/coverage extraction
// that turns its analyzer windows into signed VoteBatches, a bounded
// outbox that keeps voting while the coordinator is unreachable, and the
// peer table heartbeat-driven leader election reads.
type Node struct {
	Index   int
	Cluster *core.Cluster

	cfg   Config
	shard map[topo.HostID]bool
	rep   *Replica

	mu sync.Mutex // coordination state vs. console FedStatus readers

	// Vote production (engine goroutine during Cluster.Run; coordination
	// goroutine between runs — never both at once in the lockstep deploy).
	pendingCover map[proto.CoverClaim]bool
	lastWindow   int
	nextVersion  uint64
	outbox       []proto.VoteBatch
	votesEmitted uint64
	votesExpired uint64

	// Peer table.
	lastHeard map[int]int
	peerSeq   map[int]uint64
	// advertised is the applied seq this node's latest beacon carried.
	// Elections compare advertised values — never a node's live applied
	// seq — so every candidate is judged on equally fresh information: a
	// follower that just applied a broadcast is one round ahead of every
	// peer's *last* beacon, and comparing live-self against stale-peers
	// would let any freshly partitioned node depose a healthy leader.
	advertised uint64
	leader     int
	lastStep   int
	quorumOK   bool
}

// newNode wires one federation peer over its shard of the topology.
// build configures the underlying cluster (the deploy passes topology,
// seed, and any per-node overrides through it).
func newNode(index int, cfg Config, shard map[topo.HostID]bool, ccfg core.Config) (*Node, error) {
	n := &Node{
		Index:        index,
		cfg:          cfg,
		shard:        shard,
		rep:          nil,
		pendingCover: make(map[proto.CoverClaim]bool),
		lastWindow:   -1,
		lastHeard:    make(map[int]int),
		peerSeq:      make(map[int]uint64),
		leader:       index,
		lastStep:     -1,
	}
	// Pinglist filtering is the shard boundary: every host registers and
	// responds (so cross-pod probes from other shards complete), but only
	// this node's hosts receive pinglists, so only they probe and vote.
	prev := ccfg.WrapController
	ccfg.WrapController = func(local proto.Controller) proto.Controller {
		inner := local
		if prev != nil {
			inner = prev(local)
		}
		return shardController{Controller: inner, hosts: shard}
	}
	c, err := core.NewCluster(ccfg)
	if err != nil {
		return nil, fmt.Errorf("fed: node %d cluster: %w", index, err)
	}
	n.Cluster = c
	n.rep = NewReplica(cfg, c.Analyzer.Window())
	c.TapUploads(n.observeUploads)
	c.OnWindow(n.onWindow)
	return n, nil
}

// Replica exposes the node's copy of the replicated coordination state
// (the global incident engine hangs off it).
func (n *Node) Replica() *Replica { return n.rep }

// shardController filters pinglists down to one node's probe shard.
type shardController struct {
	proto.Controller
	hosts map[topo.HostID]bool
}

func (s shardController) Pinglists(h topo.HostID) []proto.Pinglist {
	if !s.hosts[h] {
		return nil
	}
	return s.Controller.Pinglists(h)
}

// observeUploads runs on every delivered upload batch and accumulates
// this window's coverage claims: which (entity, class) pairs this node's
// probes were in a position to judge. The claims are what scale the
// quorum per entity — Q is demanded only of nodes that could have seen
// the problem.
func (n *Node) observeUploads(b proto.UploadBatch) {
	for i := range b.Results {
		r := &b.Results[i]
		if r.DstHost != "" {
			n.claim("host:"+string(r.DstHost), analyzer.ProblemHostDown)
			n.claim("host:"+string(r.DstHost), analyzer.ProblemHighProcDelay)
		}
		if r.DstDev != "" {
			n.claim("dev:"+string(r.DstDev), analyzer.ProblemHighRTT)
			if r.Kind == proto.ToRMesh {
				n.claim("dev:"+string(r.DstDev), analyzer.ProblemRNIC)
			}
		}
		if r.Kind == proto.ServiceTracing {
			n.claim("service", analyzer.ProblemHighRTT)
		}
		for _, l := range r.ProbePath {
			n.claim(fmt.Sprintf("link:%d", int(l)), analyzer.ProblemSwitchLink)
		}
		for _, l := range r.AckPath {
			n.claim(fmt.Sprintf("link:%d", int(l)), analyzer.ProblemSwitchLink)
		}
	}
}

func (n *Node) claim(entity string, class analyzer.ProblemKind) {
	n.pendingCover[proto.CoverClaim{Entity: entity, Class: int(class)}] = true
}

// onWindow distills one local analyzer window into a signed VoteBatch
// and buffers it. Runs on the cluster's engine goroutine.
func (n *Node) onWindow(rep analyzer.WindowReport) {
	type agg struct {
		sev      alert.Severity
		count    int
		evidence int
	}
	aggs := make(map[voteKey]*agg)
	var order []voteKey
	fold := func(k voteKey, sev alert.Severity, evidence int) {
		a, ok := aggs[k]
		if !ok {
			a = &agg{sev: sev}
			aggs[k] = a
			order = append(order, k)
		}
		if sev > a.sev {
			a.sev = sev
		}
		a.count++
		if evidence > a.evidence {
			a.evidence = evidence
		}
	}
	for _, p := range rep.Problems {
		sev := alert.SeverityOf(p.Priority)
		if p.Kind == analyzer.ProblemSwitchLink && len(p.Links) > 0 {
			// Vote for every link tied at the top of Algorithm 1's count:
			// plane-symmetric replicas may break the tie differently, but
			// the truly faulty link is in every node's tie set, so that is
			// where the quorum meets. Spurious tie members differ across
			// vantage points and stay below Q — extra suppression for free.
			for _, l := range p.Links {
				fold(voteKey{Entity: fmt.Sprintf("link:%d", int(l)), Class: p.Kind}, sev, p.Evidence)
			}
			continue
		}
		fold(keyOfProblem(p), sev, p.Evidence)
	}

	n.mu.Lock()
	defer n.mu.Unlock()
	n.lastWindow = rep.Index
	n.nextVersion++
	votes := make([]proto.ProblemVote, 0, len(order))
	for _, k := range order {
		a := aggs[k]
		v := proto.ProblemVote{
			Node: n.Index, Window: rep.Index,
			Entity: k.Entity, Class: int(k.Class), Severity: int(a.sev),
			Count: a.count, Evidence: a.evidence, Version: n.nextVersion,
		}
		v.Sig = SignVote(n.cfg.Secret, v)
		votes = append(votes, v)
	}
	sortVotes(votes)
	covered := make([]proto.CoverClaim, 0, len(n.pendingCover))
	for c := range n.pendingCover {
		covered = append(covered, c)
	}
	sortClaims(covered)
	n.pendingCover = make(map[proto.CoverClaim]bool)

	b := proto.VoteBatch{
		Node: n.Index, Window: rep.Index, Proto: proto.FedVersion,
		Version: n.nextVersion, Sent: rep.End,
		Votes: votes, Covered: covered,
	}
	b.Sig = SignBatch(n.cfg.Secret, b)
	n.outbox = append(n.outbox, b)
	n.votesEmitted += uint64(len(votes))

	// Expire buffered batches past the overlap horizon: their votes could
	// no longer count toward any quorum, so holding them would only hide
	// them from the conservation ledger.
	keep := n.outbox[:0]
	for _, ob := range n.outbox {
		if ob.Window <= rep.Index-n.cfg.VoteOverlap {
			n.votesExpired += uint64(len(ob.Votes))
			continue
		}
		keep = append(keep, ob)
	}
	n.outbox = keep
}

// takeOutbox drains the buffered batches for delivery. The lockstep
// deploy only calls it when the target leader is committing this step,
// so a drained batch is always folded or accounted by the leader.
func (n *Node) takeOutbox() []proto.VoteBatch {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := n.outbox
	n.outbox = nil
	return out
}

// OutboxVotes counts the votes currently buffered (conservation's
// "still in flight" leg).
func (n *Node) OutboxVotes() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	var total uint64
	for _, b := range n.outbox {
		total += uint64(len(b.Votes))
	}
	return total
}

// VotesEmitted and VotesExpired expose the node-side conservation legs.
func (n *Node) VotesEmitted() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.votesEmitted
}

func (n *Node) VotesExpired() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.votesExpired
}

// heartbeat renders this node's beacon for global window w and records
// the advertised progress for this step's election.
func (n *Node) heartbeat(w int) proto.Heartbeat {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.advertised = n.rep.AppliedSeq()
	return proto.Heartbeat{Node: n.Index, Window: w, AppliedSeq: n.advertised, Leader: n.leader}
}

// onHeartbeat folds a peer's beacon into the table.
func (n *Node) onHeartbeat(hb proto.Heartbeat, w int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if w > n.lastHeard[hb.Node] || n.lastHeard[hb.Node] == 0 {
		n.lastHeard[hb.Node] = w
	}
	if hb.AppliedSeq > n.peerSeq[hb.Node] {
		n.peerSeq[hb.Node] = hb.AppliedSeq
	}
}

// resetPeers clears the peer table — a restarted coordination process
// relearns the federation from fresh heartbeats (Hello semantics).
func (n *Node) resetPeers() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lastHeard = make(map[int]int)
	n.peerSeq = make(map[int]uint64)
	n.leader = n.Index
	n.advertised = n.rep.AppliedSeq()
}

// alive lists the nodes this one currently believes live: itself plus
// every peer heard within HeartbeatMiss windows. Sorted.
func (n *Node) aliveLocked(w int) []int {
	out := []int{n.Index}
	for j, lw := range n.lastHeard {
		if j != n.Index && lw > w-n.cfg.HeartbeatMiss {
			out = append(out, j)
		}
	}
	sort.Ints(out)
	return out
}

// electLeader recomputes this node's leader view at global window w:
// the lowest-indexed live node whose replication progress matches the
// best progress among live nodes. A rejoining node with a stale log is
// therefore ineligible until IncidentSync catches it up — the rule that
// makes failback lossless — and every connected node computes the same
// answer from the same heartbeats.
func (n *Node) electLeader(w int) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lastStep = w
	alive := n.aliveLocked(w)
	n.quorumOK = len(alive) >= n.cfg.majority()
	seqOf := func(j int) uint64 {
		if j == n.Index {
			return n.advertised
		}
		return n.peerSeq[j]
	}
	var maxSeq uint64
	for _, j := range alive {
		if s := seqOf(j); s > maxSeq {
			maxSeq = s
		}
	}
	leader := n.Index
	for _, j := range alive {
		if seqOf(j) >= maxSeq {
			leader = j
			break
		}
	}
	n.leader = leader
	return leader
}

// hasMajority reports whether this node currently hears a majority of
// the federation within the HeartbeatMiss tolerance (quorum-availability
// status for the console).
func (n *Node) hasMajority(w int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.aliveLocked(w)) >= n.cfg.majority()
}

// hasFreshMajority is the commit gate: a majority of the federation must
// have beaconed in THIS step. The HeartbeatMiss tolerance is fine for
// election, but letting a leader commit on heartbeats from before a
// partition began is exactly how split-brain starts — a freshly isolated
// node would keep "hearing" a majority for HeartbeatMiss windows.
func (n *Node) hasFreshMajority(w int) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	count := 1 // self
	for j, lw := range n.lastHeard {
		if j != n.Index && lw == w {
			count++
		}
	}
	return count >= n.cfg.majority()
}

// notePeerSeq records replication progress learned outside heartbeats
// (after pushing an IncidentSync or broadcasting a round).
func (n *Node) notePeerSeq(j int, seq uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if seq > n.peerSeq[j] {
		n.peerSeq[j] = seq
	}
}

// FedStatus implements api.PeerSource: the node's role, leader view,
// quorum availability and per-peer heartbeat ages for /api/peers and the
// quorum-aware /healthz.
func (n *Node) FedStatus() api.FedStatus {
	n.mu.Lock()
	defer n.mu.Unlock()
	role := "follower"
	if n.leader == n.Index {
		role = "leader"
	}
	st := api.FedStatus{
		Node: n.Index, Nodes: n.cfg.Nodes, Quorum: n.cfg.Quorum,
		Role: role, Leader: n.leader, Window: n.lastStep,
		AppliedSeq: n.rep.AppliedSeq(), QuorumOK: n.quorumOK,
	}
	if n.cfg.Nodes == 1 {
		st.QuorumOK = true
	}
	if !st.QuorumOK {
		st.Reason = fmt.Sprintf("quorum unavailable: hear %d/%d nodes, need %d",
			len(n.aliveLocked(n.lastStep)), n.cfg.Nodes, n.cfg.majority())
	}
	for j := 0; j < n.cfg.Nodes; j++ {
		if j == n.Index {
			continue
		}
		p := api.PeerStatus{Node: j, AppliedSeq: n.peerSeq[j], Leader: j == n.leader}
		if lw, ok := n.lastHeard[j]; ok {
			p.LastHeartbeatAge = n.lastStep - lw
			p.Alive = lw > n.lastStep-n.cfg.HeartbeatMiss
		} else {
			p.LastHeartbeatAge = -1
		}
		st.Peers = append(st.Peers, p)
	}
	return st
}
