// Package fed is the federated control plane: N peer controller/analyzer
// nodes — one per pod or region — each running the existing agent →
// pipeline → analyzer stack against its local probe shard, plus a
// coordination tier that folds per-node problem *votes* into globally
// confirmed incidents. It is the multi-process story of ROADMAP Open
// item 1: the paper deploys over tens of thousands of RNICs, which no
// single analyzer process watches alone, and 007-style democratic voting
// across vantage points is also what suppresses single-vantage false
// positives.
//
// # Architecture
//
// Every Node wraps a full core.Cluster replica of the shared fabric
// (same topology, same seed — identical physics) but filters pinglists
// so only the node's own pod shard actually probes: node k sees the
// fabric exactly as a regional deployment would, through the probes its
// own hosts send. Per analysis window each node distills its analyzer
// report into signed proto.ProblemVote records plus proto.CoverClaim
// coverage claims ("my probes could have detected this entity/class"),
// and buffers them in a local outbox.
//
// Coordination is a replicated log of vote Rounds. The leader — the
// lowest-indexed live node whose replication progress is not behind any
// live peer — collects delivered vote batches each window, commits them
// as a hash-chained Round, applies it to its own replica, and broadcasts
// it; followers apply rounds in sequence order and verify the chain.
// Every replica therefore runs the same quorum evaluator over the same
// round log and feeds the same synthesized problems into its own
// alert.Engine: incident state is replicated by construction, so leader
// failover can neither lose an incident nor open it twice, and the
// global timeline is a pure function of the committed log — bit-identical
// for a fixed seed regardless of which nodes were partitioned when.
//
// The quorum rule: an entity/class opens only when ≥Q of the nodes that
// *cover* it voted it problematic within the overlap horizon (Q clamped
// to the live coverage, min 1 — an entity only one vantage can see must
// not be unreportable), and closes by the same rule via the alert
// engine's usual hysteresis: when quorum is lost the evaluator stops
// synthesizing the problem and ResolveAfter clean rounds resolve it.
//
// Availability follows the paper's controller-restart story: a node that
// cannot reach the leader keeps its cached pinglists, keeps probing, and
// keeps buffering votes (bounded by the overlap horizon — older votes
// could no longer count toward any quorum and are expired, counted, not
// silently dropped). On rejoin the leader replays the missed round
// suffix (IncidentSync) before accepting the node's buffered votes, so
// reconciliation is ordered and deterministic.
package fed

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"rpingmesh/internal/alert"
	"rpingmesh/internal/analyzer"
	"rpingmesh/internal/proto"
	"rpingmesh/internal/topo"
)

// Config tunes the federation tier; zero values take defaults.
type Config struct {
	// Nodes is the federation size N (>= 1).
	Nodes int
	// Quorum is Q: votes required (among covering nodes) to confirm an
	// entity problematic. Default: majority of N. Clamped per entity to
	// the number of nodes currently covering it (min 1).
	Quorum int
	// VoteOverlap is the window horizon (in global windows) within which
	// votes from different nodes count as overlapping, and also how long
	// an unreachable node's outbox entries stay eligible before expiring.
	// Default 4 — wide enough to bridge a heartbeat-miss failover.
	VoteOverlap int
	// CoverageHorizon is how many windows a coverage claim keeps a node
	// in an entity's quorum denominator. Default 4.
	CoverageHorizon int
	// HeartbeatMiss is how many consecutive missed heartbeats demote a
	// peer to dead for election and quorum-availability purposes.
	// Default 2.
	HeartbeatMiss int
	// Secret keys the vote/batch signatures. All nodes of one deployment
	// share it; a batch whose signature does not verify is dropped and
	// counted, never folded.
	Secret uint64
	// Alert configures every replica's global incident engine (the same
	// lifecycle engine single-node deployments use — hysteresis, flap
	// suppression and severity are reused, not reimplemented).
	Alert alert.Config
}

func (c *Config) setDefaults() {
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.Quorum <= 0 {
		c.Quorum = c.Nodes/2 + 1
	}
	if c.VoteOverlap <= 0 {
		c.VoteOverlap = 4
	}
	if c.CoverageHorizon <= 0 {
		c.CoverageHorizon = 4
	}
	if c.HeartbeatMiss <= 0 {
		c.HeartbeatMiss = 2
	}
}

// majority is the node count needed for the coordinator to commit: a
// leader that cannot reach a majority of the federation stalls rather
// than risk a divergent log.
func (c *Config) majority() int { return c.Nodes/2 + 1 }

// --- vote/problem key round trip ---------------------------------------

// voteKey mirrors alert.Key: the (entity, class) identity a vote is
// about. Votes and coverage claims from different nodes meet on it.
type voteKey struct {
	Entity string
	Class  analyzer.ProblemKind
}

func keyOfProblem(p analyzer.Problem) voteKey {
	k := alert.KeyOf(p)
	return voteKey{Entity: k.Entity, Class: k.Class}
}

// problemOf reconstructs an analyzer.Problem from a confirmed vote key,
// inverting alert.KeyOf's anchoring (device, then host, then link, then
// the catch-all "service" entity) so that feeding the synthesized
// problem back through alert.KeyOf lands on the identical incident key.
func (k voteKey) problemOf(sev alert.Severity, evidence int) analyzer.Problem {
	p := analyzer.Problem{Kind: k.Class, Priority: priorityOf(sev), Evidence: evidence}
	switch {
	case strings.HasPrefix(k.Entity, "dev:"):
		p.Device = topo.DeviceID(k.Entity[len("dev:"):])
	case strings.HasPrefix(k.Entity, "host:"):
		p.Host = topo.HostID(k.Entity[len("host:"):])
	case strings.HasPrefix(k.Entity, "link:"):
		if n, err := strconv.Atoi(k.Entity[len("link:"):]); err == nil {
			p.Link = topo.LinkID(n)
			p.Links = []topo.LinkID{topo.LinkID(n)}
		}
	}
	return p
}

// priorityOf inverts alert.SeverityOf.
func priorityOf(s alert.Severity) analyzer.Priority {
	switch s {
	case alert.SevCritical:
		return analyzer.P0
	case alert.SevMajor:
		return analyzer.P1
	default:
		return analyzer.P2
	}
}

// sortClaims orders coverage claims canonically (entity, then class) so
// batch signatures and round digests never depend on map iteration.
func sortClaims(cs []proto.CoverClaim) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Entity != cs[j].Entity {
			return cs[i].Entity < cs[j].Entity
		}
		return cs[i].Class < cs[j].Class
	})
}

// sortVotes orders votes canonically (entity, then class).
func sortVotes(vs []proto.ProblemVote) {
	sort.Slice(vs, func(i, j int) bool {
		if vs[i].Entity != vs[j].Entity {
			return vs[i].Entity < vs[j].Entity
		}
		return vs[i].Class < vs[j].Class
	})
}

// --- signing ------------------------------------------------------------

// sigWriter folds values into an FNV-1a 64 hash; the zero-allocation
// "signature" stands in for an HMAC — enough to catch corruption and
// casual forgery in a simulation, with the real thing a drop-in.
type sigWriter struct{ h uint64 }

func newSig(secret uint64) *sigWriter {
	h := fnv.New64a()
	var b [8]byte
	putU64(b[:], secret)
	_, _ = h.Write(b[:])
	return &sigWriter{h: h.Sum64()}
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func (s *sigWriter) u64(v uint64) {
	const prime64 = 1099511628211
	for i := 0; i < 8; i++ {
		s.h ^= uint64(byte(v >> (8 * i)))
		s.h *= prime64
	}
}

func (s *sigWriter) int(v int) { s.u64(uint64(int64(v))) }

func (s *sigWriter) str(v string) {
	const prime64 = 1099511628211
	for i := 0; i < len(v); i++ {
		s.h ^= uint64(v[i])
		s.h *= prime64
	}
	// Length terminator so ("ab","c") never collides with ("a","bc").
	s.u64(uint64(len(v)))
}

// SignVote computes a vote's signature under the deployment secret.
func SignVote(secret uint64, v proto.ProblemVote) uint64 {
	s := newSig(secret)
	s.int(v.Node)
	s.int(v.Window)
	s.str(v.Entity)
	s.int(v.Class)
	s.int(v.Severity)
	s.int(v.Count)
	s.int(v.Evidence)
	s.u64(v.Version)
	return s.h
}

// SignBatch computes a batch's signature over its header and every vote
// and coverage claim (votes by their own signatures, which already bind
// their fields).
func SignBatch(secret uint64, b proto.VoteBatch) uint64 {
	s := newSig(secret)
	s.int(b.Node)
	s.int(b.Window)
	s.int(b.Proto)
	s.u64(b.Version)
	for _, v := range b.Votes {
		s.u64(v.Sig)
	}
	for _, c := range b.Covered {
		s.str(c.Entity)
		s.int(c.Class)
	}
	return s.h
}

// VerifyBatch checks a batch's signature chain: the batch signature and
// every vote signature must verify under the secret, and every vote must
// carry the batch's node and protocol version.
func VerifyBatch(secret uint64, b proto.VoteBatch) error {
	if b.Proto != proto.FedVersion {
		return fmt.Errorf("fed: batch from node %d speaks proto %d, want %d", b.Node, b.Proto, proto.FedVersion)
	}
	if SignBatch(secret, b) != b.Sig {
		return fmt.Errorf("fed: batch node=%d window=%d signature mismatch", b.Node, b.Window)
	}
	for i, v := range b.Votes {
		if v.Node != b.Node {
			return fmt.Errorf("fed: batch node=%d carries vote %d claiming node %d", b.Node, i, v.Node)
		}
		if SignVote(secret, v) != v.Sig {
			return fmt.Errorf("fed: vote %d in batch node=%d window=%d signature mismatch", i, b.Node, b.Window)
		}
	}
	return nil
}
