package fed

import (
	"fmt"
	"sort"
	"sync"

	"rpingmesh/internal/core"
	"rpingmesh/internal/proto"
	"rpingmesh/internal/sim"
	"rpingmesh/internal/topo"
)

// DeployConfig describes an in-process federated deployment for the
// deterministic simulation: N nodes over one shared CLOS shape, each
// probing its own pod shard.
type DeployConfig struct {
	// Fed is the federation tier configuration (Nodes is N).
	Fed Config
	// Seed seeds every node's cluster identically: the replicas share the
	// fabric's physics, they differ only in vantage point.
	Seed int64
	// Clos is the shared fabric shape. Zero dimensions default to one pod
	// per node, 2 ToRs × 2 Aggs per pod, 2 spines, 2 hosts per ToR.
	Clos topo.ClosConfig
	// Configure, when set, adjusts each node's core.Config before the
	// cluster is built (fault injection setup, pipeline policy, …). The
	// topology, seed and controller wrapper are already in place.
	Configure func(node int, cfg *core.Config)
}

// StepInfo summarizes one coordination step for observers (the chaos
// invariant sweep, the soak runner's leader history).
type StepInfo struct {
	// Window is the global window index just coordinated.
	Window int
	// Leader is the node that committed this window's round, -1 if no
	// node could (no elected leader reached a majority).
	Leader int
	// DoubleCommit reports that more than one node committed a round for
	// this window — split-brain, always an invariant violation.
	DoubleCommit bool
	// Synced is the number of rounds replayed to lagging peers this step.
	Synced int
	// Errors lists round-application failures (log divergence).
	Errors []string
}

// VoteAccounting is the federation-wide conservation ledger: every vote
// a node ever emitted must be counted in the canonical committed log,
// still buffered in an outbox, expired locally, or dropped-and-counted
// by a committing replica.
type VoteAccounting struct {
	Emitted  uint64
	Counted  uint64
	Buffered uint64
	Expired  uint64 // expired in node outboxes while unreachable
	Dropped  uint64 // deduped/expired/rejected on a commit path
}

// Balanced reports whether the ledger balances.
func (a VoteAccounting) Balanced() bool {
	return a.Emitted == a.Counted+a.Buffered+a.Expired+a.Dropped
}

func (a VoteAccounting) String() string {
	return fmt.Sprintf("emitted=%d counted=%d buffered=%d expired=%d dropped=%d",
		a.Emitted, a.Counted, a.Buffered, a.Expired, a.Dropped)
}

// committedRound is the deploy's canonical record of one committed seq —
// the reference the conservation ledger and split-brain check use.
type committedRound struct {
	digest uint64
	votes  uint64
	window int
	leader int
}

// mutation is a timed federation fault, applied at the first window
// boundary at or after At.
type mutation struct {
	at sim.Time
	fn func()
}

// Deploy is an in-process federated deployment: N fed.Nodes advanced in
// lockstep, one coordination round per analysis window. Cluster physics
// runs in parallel (the replicas are independent simulations), while
// coordination — heartbeats, election, sync, vote delivery, commit — is
// single-threaded and canonically ordered, so the committed round log
// and every incident timeline derived from it are bit-identical for a
// fixed seed regardless of GOMAXPROCS or which nodes were partitioned.
type Deploy struct {
	cfg    DeployConfig
	nodes  []*Node
	window sim.Time
	step   int

	isolated []bool // partitioned from every peer
	killed   []bool // coordination process down (cluster keeps probing)
	delayed  []bool // votes withheld this and following steps

	mutations []mutation

	canonical     map[uint64]committedRound
	maxSeq        uint64
	leaderHistory []int
	onStep        []func(StepInfo)
}

// NewDeploy builds the federation.
func NewDeploy(cfg DeployConfig) (*Deploy, error) {
	cfg.Fed.setDefaults()
	n := cfg.Fed.Nodes
	clos := cfg.Clos
	if clos.Pods <= 0 {
		clos.Pods = n
		if clos.Pods < 2 {
			clos.Pods = 2
		}
	}
	if clos.ToRsPerPod <= 0 {
		clos.ToRsPerPod = 2
	}
	if clos.AggsPerPod <= 0 {
		clos.AggsPerPod = 2
	}
	if clos.Spines <= 0 {
		clos.Spines = 2
	}
	if clos.HostsPerToR <= 0 {
		clos.HostsPerToR = 2
	}
	if clos.RNICsPerHost <= 0 {
		clos.RNICsPerHost = 1
	}

	d := &Deploy{
		cfg:       cfg,
		isolated:  make([]bool, n),
		killed:    make([]bool, n),
		delayed:   make([]bool, n),
		canonical: make(map[uint64]committedRound),
	}
	for i := 0; i < n; i++ {
		// Each node builds its own Topology from the same shape: identical
		// IDs and physics, but no shared mutable state between the parallel
		// cluster advances.
		tp, err := topo.BuildClos(clos)
		if err != nil {
			return nil, fmt.Errorf("fed: node %d topology: %w", i, err)
		}
		sh, err := tp.Partition(n)
		if err != nil {
			return nil, fmt.Errorf("fed: node %d partition: %w", i, err)
		}
		shard := make(map[topo.HostID]bool)
		for h, s := range sh.HostShard {
			if s == i%sh.Shards {
				shard[h] = true
			}
		}
		ccfg := core.Config{Topology: tp, Seed: cfg.Seed}
		if cfg.Configure != nil {
			cfg.Configure(i, &ccfg)
		}
		node, err := newNode(i, cfg.Fed, shard, ccfg)
		if err != nil {
			return nil, err
		}
		node.Cluster.StartAgents()
		d.nodes = append(d.nodes, node)
		if i == 0 {
			d.window = node.Cluster.Analyzer.Window()
		}
	}
	return d, nil
}

// Node returns federation peer i.
func (d *Deploy) Node(i int) *Node { return d.nodes[i] }

// Nodes is the federation size.
func (d *Deploy) Nodes() int { return len(d.nodes) }

// Window is the analysis/coordination window length.
func (d *Deploy) Window() sim.Time { return d.window }

// Steps is the number of coordination steps run so far.
func (d *Deploy) Steps() int { return d.step }

// Now is the simulated time reached by the lockstep advance.
func (d *Deploy) Now() sim.Time { return sim.Time(d.step) * d.window }

// OnStep registers an observer called after every coordination step.
func (d *Deploy) OnStep(fn func(StepInfo)) { d.onStep = append(d.onStep, fn) }

// LeaderHistory returns the committing leader of every step (-1 where no
// commit happened).
func (d *Deploy) LeaderHistory() []int {
	return append([]int(nil), d.leaderHistory...)
}

// At schedules fn to run at the first window boundary at or after t,
// before that window's coordination. Used to inject federation faults
// deterministically mid-run.
func (d *Deploy) At(t sim.Time, fn func()) {
	d.mutations = append(d.mutations, mutation{at: t, fn: fn})
	sort.SliceStable(d.mutations, func(i, j int) bool { return d.mutations[i].at < d.mutations[j].at })
}

// Partition isolates node i from every peer (or heals it). The node's
// cluster keeps probing and voting into its outbox.
func (d *Deploy) Partition(i int, on bool) { d.isolated[i] = on }

// Kill takes node i's coordination process down (or revives it). The
// underlying cluster keeps probing — the paper's agents survive
// controller restarts on cached pinglists — but the node neither sends
// nor receives federation traffic. Revival clears the peer table: a
// restarted coordinator relearns the federation from fresh heartbeats.
func (d *Deploy) Kill(i int, on bool) {
	if d.killed[i] && !on {
		d.nodes[i].resetPeers()
	}
	d.killed[i] = on
}

// DelayVotes withholds node i's vote deliveries (or releases them); the
// batches stay buffered in the outbox and reconcile later — the
// arrival-interleaving knob the determinism invariant exercises.
func (d *Deploy) DelayVotes(i int, on bool) { d.delayed[i] = on }

// Killed reports node i's coordination-process state.
func (d *Deploy) Killed(i int) bool { return d.killed[i] }

// Partitioned reports node i's isolation state.
func (d *Deploy) Partitioned(i int) bool { return d.isolated[i] }

// down: no coordination I/O at all.
func (d *Deploy) down(i int) bool { return d.killed[i] }

// canReach: both coordination processes up and neither end isolated.
func (d *Deploy) canReach(i, j int) bool {
	return i != j && !d.down(i) && !d.down(j) && !d.isolated[i] && !d.isolated[j]
}

// Run advances the deployment by n windows.
func (d *Deploy) Run(n int) {
	for i := 0; i < n; i++ {
		d.Step()
	}
}

// Step advances every cluster one analysis window (in parallel — the
// replicas are independent simulations) and then runs one deterministic
// coordination round at the boundary.
func (d *Deploy) Step() StepInfo {
	var wg sync.WaitGroup
	for _, n := range d.nodes {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			n.Cluster.Run(d.window)
		}(n)
	}
	wg.Wait()

	w := d.step
	boundary := sim.Time(w+1) * d.window
	for len(d.mutations) > 0 && d.mutations[0].at <= boundary {
		d.mutations[0].fn()
		d.mutations = d.mutations[1:]
	}

	info := d.coordinate(w)
	d.step++
	d.leaderHistory = append(d.leaderHistory, info.Leader)
	for _, fn := range d.onStep {
		fn(info)
	}
	return info
}

// coordinate runs one federation round for global window w. Order is
// canonical throughout (ascending node index at every phase), which is
// what makes the committed log independent of scheduling.
func (d *Deploy) coordinate(w int) StepInfo {
	info := StepInfo{Window: w, Leader: -1}
	n := len(d.nodes)

	// Phase 1 — heartbeats. Every up node beacons; every reachable peer
	// folds it. A node always hears itself.
	for i := 0; i < n; i++ {
		if d.down(i) {
			continue
		}
		hb := d.nodes[i].heartbeat(w)
		for j := 0; j < n; j++ {
			if d.canReach(i, j) {
				d.nodes[j].onHeartbeat(hb, w)
			}
		}
	}

	// Phase 2 — every up node recomputes its leader view from the peer
	// table; connected nodes converge because they folded the same beacons.
	views := make([]int, n)
	for i := 0; i < n; i++ {
		views[i] = -1
		if !d.down(i) {
			views[i] = d.nodes[i].electLeader(w)
		}
	}

	// Phase 3 — which self-believed leaders may commit this step: only
	// those that heard a majority of the federation THIS step. Fresh
	// beacons (not the HeartbeatMiss-tolerant view) are the split-brain
	// guard: at most one connected component holds a majority.
	willCommit := make([]bool, n)
	for i := 0; i < n; i++ {
		willCommit[i] = !d.down(i) && views[i] == i && d.nodes[i].hasFreshMajority(w)
	}

	// Phase 4 — reconciliation: committing leaders replay their round-log
	// suffix to reachable peers that fell behind (IncidentSync).
	for i := 0; i < n; i++ {
		if !willCommit[i] {
			continue
		}
		leader := d.nodes[i]
		for j := 0; j < n; j++ {
			if !d.canReach(i, j) {
				continue
			}
			peer := d.nodes[j]
			behind := peer.rep.AppliedSeq()
			if behind >= leader.rep.AppliedSeq() {
				continue
			}
			rounds := leader.rep.RoundsSince(behind)
			for _, rd := range rounds {
				if err := peer.rep.Apply(rd); err != nil {
					info.Errors = append(info.Errors,
						fmt.Sprintf("sync %d→%d: %v", i, j, err))
					break
				}
				info.Synced++
			}
			leader.notePeerSeq(j, peer.rep.AppliedSeq())
		}
	}

	// Phase 5 — vote delivery. A node sends its outbox to its believed
	// leader only when that leader will actually commit this step (the
	// wire protocol's VoteAck would otherwise tell it to keep buffering).
	delivered := make(map[int][]proto.VoteBatch, 1)
	for i := 0; i < n; i++ {
		if d.down(i) || d.delayed[i] {
			continue
		}
		l := views[i]
		if l < 0 || !willCommit[l] {
			continue
		}
		if l != i && !d.canReach(i, l) {
			continue
		}
		delivered[l] = append(delivered[l], d.nodes[i].takeOutbox()...)
	}

	// Phase 6 — commit and broadcast. Ascending order again; the first
	// committer is the step's recorded leader, any second one is flagged.
	for i := 0; i < n; i++ {
		if !willCommit[i] {
			continue
		}
		rd, err := d.nodes[i].rep.Commit(i, w, delivered[i])
		if err != nil {
			info.Errors = append(info.Errors, fmt.Sprintf("commit at %d: %v", i, err))
			continue
		}
		if info.Leader < 0 {
			info.Leader = i
		} else {
			info.DoubleCommit = true
		}
		d.recordCanonical(rd, &info)
		for j := 0; j < n; j++ {
			if !d.canReach(i, j) {
				continue
			}
			if err := d.nodes[j].rep.Apply(rd); err != nil {
				info.Errors = append(info.Errors, fmt.Sprintf("apply %d→%d: %v", i, j, err))
				continue
			}
			d.nodes[i].notePeerSeq(j, d.nodes[j].rep.AppliedSeq())
		}
	}
	return info
}

// recordCanonical folds one committed round into the deploy-wide
// canonical log, flagging any seq committed twice with different content.
func (d *Deploy) recordCanonical(rd proto.Round, info *StepInfo) {
	var votes uint64
	for _, b := range rd.Batches {
		votes += uint64(len(b.Votes))
	}
	if prev, ok := d.canonical[rd.Seq]; ok {
		if prev.digest != rd.Digest {
			info.Errors = append(info.Errors, fmt.Sprintf(
				"seq %d committed twice with different digests (%x by %d, %x by %d)",
				rd.Seq, prev.digest, prev.leader, rd.Digest, rd.Leader))
		}
		return
	}
	d.canonical[rd.Seq] = committedRound{digest: rd.Digest, votes: votes, window: rd.Window, leader: rd.Leader}
	if rd.Seq > d.maxSeq {
		d.maxSeq = rd.Seq
	}
}

// MaxSeq is the highest canonically committed round sequence.
func (d *Deploy) MaxSeq() uint64 { return d.maxSeq }

// CanonicalDigest returns the digest of canonical round seq.
func (d *Deploy) CanonicalDigest(seq uint64) (uint64, bool) {
	r, ok := d.canonical[seq]
	return r.digest, ok
}

// Accounting computes the federation-wide vote conservation ledger.
func (d *Deploy) Accounting() VoteAccounting {
	var a VoteAccounting
	for _, r := range d.canonical {
		a.Counted += r.votes
	}
	for _, n := range d.nodes {
		a.Emitted += n.VotesEmitted()
		a.Expired += n.VotesExpired()
		a.Buffered += n.OutboxVotes()
		dr := n.rep.Drops()
		a.Dropped += dr.Total()
	}
	return a
}
