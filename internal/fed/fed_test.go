package fed

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"rpingmesh/internal/alert"
	"rpingmesh/internal/faultgen"
	"rpingmesh/internal/topo"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files with observed output")

// newTestDeploy builds the canonical 3-node test federation (Q=2, one
// pod per node).
func newTestDeploy(t *testing.T, seed int64) *Deploy {
	t.Helper()
	d, err := NewDeploy(DeployConfig{
		Fed:  Config{Nodes: 3, Quorum: 2, Secret: 0xfeed},
		Seed: seed,
	})
	if err != nil {
		t.Fatalf("NewDeploy: %v", err)
	}
	return d
}

// spineLink returns the lowest-ID agg→spine link — a fabric link that
// inter-ToR probes from every pod traverse (multi-vantage by design).
func spineLink(t *testing.T, tp *topo.Topology) topo.LinkID {
	t.Helper()
	best := topo.LinkID(-1)
	for _, l := range tp.Links {
		from, to := tp.Switches[l.From], tp.Switches[l.To]
		if from == nil || to == nil {
			continue
		}
		if from.Tier == topo.TierAgg && to.Tier == topo.TierSpine {
			if best < 0 || l.ID < best {
				best = l.ID
			}
		}
	}
	if best < 0 {
		t.Fatal("no agg→spine link in topology")
	}
	return best
}

// corrupt injects link corruption into the listed nodes' replicas. The
// set of replicas carrying the fault is the test's ground truth: all of
// them = the fault is real, one of them = a single-vantage artifact.
func corrupt(t *testing.T, d *Deploy, link topo.LinkID, sev float64, nodes ...int) []*faultgen.Injector {
	t.Helper()
	injs := make([]*faultgen.Injector, 0, len(nodes))
	for _, i := range nodes {
		in := faultgen.NewInjector(d.Node(i).Cluster, 42)
		if _, err := in.Inject(faultgen.Fault{
			Cause: faultgen.PacketCorruption, Link: link, Severity: sev,
		}); err != nil {
			t.Fatalf("inject node %d: %v", i, err)
		}
		injs = append(injs, in)
	}
	return injs
}

// watchSteps fails the test on any coordination error or double commit
// and checks vote conservation after every step.
func watchSteps(t *testing.T, d *Deploy) {
	t.Helper()
	d.OnStep(func(info StepInfo) {
		for _, e := range info.Errors {
			t.Errorf("step w%d: %s", info.Window, e)
		}
		if info.DoubleCommit {
			t.Errorf("step w%d: double commit", info.Window)
		}
		if a := d.Accounting(); !a.Balanced() {
			t.Errorf("step w%d: vote conservation broken: %v", info.Window, a)
		}
	})
}

// requireConverged asserts every replica ends on the same log and the
// same incident timeline, and that each timeline passes the alert
// engine's own invariants.
func requireConverged(t *testing.T, d *Deploy) {
	t.Helper()
	r0 := d.Node(0).Replica()
	for i := 1; i < d.Nodes(); i++ {
		r := d.Node(i).Replica()
		if r.AppliedSeq() != r0.AppliedSeq() || r.Digest() != r0.Digest() {
			t.Fatalf("replica %d at seq=%d digest=%x, replica 0 at seq=%d digest=%x",
				i, r.AppliedSeq(), r.Digest(), r0.AppliedSeq(), r0.Digest())
		}
		if r.TimelineDigest() != r0.TimelineDigest() {
			t.Fatalf("replica %d timeline diverged:\n%s\nvs replica 0:\n%s",
				i, strings.Join(r.Timeline(), "\n"), strings.Join(r0.Timeline(), "\n"))
		}
	}
	for i := 0; i < d.Nodes(); i++ {
		if err := d.Node(i).Replica().Engine().CheckInvariants(); err != nil {
			t.Fatalf("replica %d alert invariants: %v", i, err)
		}
	}
}

func TestFedQuorumOpensAndResolves(t *testing.T) {
	d := newTestDeploy(t, 1)
	watchSteps(t, d)
	d.Run(2)
	link := spineLink(t, d.Node(0).Cluster.Topo)
	injs := corrupt(t, d, link, 0.5, 0, 1, 2)
	d.Run(6)

	entity := fmt.Sprintf("link:%d", int(link))
	opened := false
	for _, line := range d.Node(0).Replica().Timeline() {
		if strings.Contains(line, "open") && strings.Contains(line, entity) {
			opened = true
		}
	}
	if !opened {
		t.Fatalf("no global incident for %s after quorum fault; timeline:\n%s",
			entity, strings.Join(d.Node(0).Replica().Timeline(), "\n"))
	}

	for _, in := range injs {
		in.ClearAll()
	}
	// VoteOverlap keeps stale votes eligible for 4 windows, then the
	// engine needs ResolveAfter clean windows: give it room.
	d.Run(10)
	resolved := false
	for _, line := range d.Node(0).Replica().Timeline() {
		if strings.Contains(line, "resolve") && strings.Contains(line, entity) {
			resolved = true
		}
	}
	if !resolved {
		t.Fatalf("incident for %s never resolved after fault cleared; timeline:\n%s",
			entity, strings.Join(d.Node(0).Replica().Timeline(), "\n"))
	}
	requireConverged(t, d)
}

// TestFedSingleVantageClamp: an entity only one node's probes can see —
// an RNIC watched by its own ToR mesh — must still be reportable: the
// quorum clamps to the covering set (floor 1), so the single vantage's
// vote opens the incident alone.
func TestFedSingleVantageClamp(t *testing.T) {
	d := newTestDeploy(t, 2)
	watchSteps(t, d)
	d.Run(2)

	// Deterministic pick: first host of node 0's shard, first RNIC.
	n0 := d.Node(0)
	hosts := make([]string, 0, len(n0.shard))
	for h := range n0.shard {
		hosts = append(hosts, string(h))
	}
	sort.Strings(hosts)
	host := topo.HostID(hosts[0])
	dev := n0.Cluster.Topo.Hosts[host].RNICs[0]

	// Ground truth everywhere; only node 0's ToR mesh can observe it.
	for i := 0; i < d.Nodes(); i++ {
		in := faultgen.NewInjector(d.Node(i).Cluster, 7)
		if _, err := in.Inject(faultgen.Fault{Cause: faultgen.RNICDown, Dev: dev}); err != nil {
			t.Fatalf("inject node %d: %v", i, err)
		}
	}
	d.Run(6)

	entity := "dev:" + string(dev)
	opened := false
	for _, line := range d.Node(0).Replica().Timeline() {
		if strings.Contains(line, "open") && strings.Contains(line, entity) {
			opened = true
		}
	}
	if !opened {
		t.Fatalf("single-vantage entity %s never opened globally; timeline:\n%s",
			entity, strings.Join(d.Node(0).Replica().Timeline(), "\n"))
	}
	requireConverged(t, d)
}

// TestFedSuppressesSingleNodeFalsePositive is the acceptance golden: a
// fault visible from only one of three vantage points (injected into one
// replica's physics) opens a local incident on that node but never a
// global one, while the same fault on every vantage confirms globally.
func TestFedSuppressesSingleNodeFalsePositive(t *testing.T) {
	var out strings.Builder

	// Phase A: node 1 alone sees corruption (a single-vantage artifact).
	dA := newTestDeploy(t, 3)
	watchSteps(t, dA)
	dA.Run(2)
	linkA := spineLink(t, dA.Node(0).Cluster.Topo)
	corrupt(t, dA, linkA, 0.5, 1)
	dA.Run(8)
	requireConverged(t, dA)

	fmt.Fprintf(&out, "== single-vantage fault (node 1 only): global timeline ==\n")
	writeTimeline(&out, dA.Node(0).Replica().Timeline())
	locals := dA.Node(1).Cluster.Alerts.Incidents(alert.Filter{})
	localKeys := make([]string, 0, len(locals))
	for _, in := range locals {
		if in.Key.Class.String() == "switch-link" {
			localKeys = append(localKeys, in.Key.String())
		}
	}
	sort.Strings(localKeys)
	fmt.Fprintf(&out, "== node 1 local switch-link incidents (the suppressed false positive) ==\n")
	if len(localKeys) == 0 {
		t.Fatal("node 1 never even opened a local incident — the fault was not observed at all")
	}
	for _, k := range localKeys {
		fmt.Fprintf(&out, "%s\n", k)
	}
	for _, line := range dA.Node(0).Replica().Timeline() {
		if strings.Contains(line, "open") {
			t.Fatalf("single-vantage fault opened a global incident: %s", line)
		}
	}

	// Phase B: the same fault on every vantage point must confirm.
	dB := newTestDeploy(t, 3)
	watchSteps(t, dB)
	dB.Run(2)
	corrupt(t, dB, linkA, 0.5, 0, 1, 2)
	dB.Run(8)
	requireConverged(t, dB)
	fmt.Fprintf(&out, "== same fault on all 3 vantage points: global timeline ==\n")
	writeTimeline(&out, dB.Node(0).Replica().Timeline())
	openedGlobal := false
	for _, line := range dB.Node(0).Replica().Timeline() {
		if strings.Contains(line, "open") {
			openedGlobal = true
		}
	}
	if !openedGlobal {
		t.Fatal("quorum fault opened no global incident")
	}

	checkGolden(t, "suppression.golden", out.String())
}

func writeTimeline(out *strings.Builder, lines []string) {
	if len(lines) == 0 {
		out.WriteString("(none)\n")
		return
	}
	for _, l := range lines {
		out.WriteString(l)
		out.WriteByte('\n')
	}
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-golden): %v", err)
	}
	if string(want) != got {
		t.Fatalf("output diverges from %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestFedFailoverReconcile kills the leader mid-incident: leadership
// must move, the incident must survive without reopening, and the
// revived node must catch up to an identical log.
func TestFedFailoverReconcile(t *testing.T) {
	d := newTestDeploy(t, 4)
	watchSteps(t, d)
	d.Run(2)
	link := spineLink(t, d.Node(0).Cluster.Topo)
	injs := corrupt(t, d, link, 0.5, 0, 1, 2)
	d.Run(3) // incident opens under leader 0

	d.Kill(0, true)
	d.Run(4) // HeartbeatMiss=2 stalls two windows, then node 1 leads
	d.Kill(0, false)
	d.Run(4) // node 0 syncs up and (caught up) takes leadership back

	for _, in := range injs {
		in.ClearAll()
	}
	d.Run(10)
	requireConverged(t, d)

	hist := d.LeaderHistory()
	saw1 := false
	for _, l := range hist {
		if l == 1 {
			saw1 = true
		}
	}
	if !saw1 {
		t.Fatalf("leadership never moved to node 1 after killing 0: %v", hist)
	}
	if last := hist[len(hist)-1]; last != 0 {
		t.Fatalf("node 0 never took leadership back after rejoining: %v", hist)
	}

	// The incident must have opened exactly once — failover neither lost
	// nor double-opened it.
	entity := fmt.Sprintf("link:%d", int(link))
	opens, resolves := 0, 0
	for _, line := range d.Node(0).Replica().Timeline() {
		if !strings.Contains(line, entity) {
			continue
		}
		if strings.Contains(line, " open ") {
			opens++
		}
		if strings.Contains(line, " resolve ") {
			resolves++
		}
	}
	if opens != 1 || resolves != 1 {
		t.Fatalf("want exactly one open and one resolve for %s across failover, got %d/%d; timeline:\n%s",
			entity, opens, resolves, strings.Join(d.Node(0).Replica().Timeline(), "\n"))
	}
}

// TestFedPartitionBuffersVotes isolates a node: its votes must stay
// buffered or expire (counted), never vanish, and rejoin must reconcile.
func TestFedPartitionBuffersVotes(t *testing.T) {
	d := newTestDeploy(t, 5)
	watchSteps(t, d)
	d.Run(2)
	link := spineLink(t, d.Node(0).Cluster.Topo)
	corrupt(t, d, link, 0.5, 0, 1, 2)

	d.Partition(2, true)
	d.Run(6) // long enough that some of node 2's buffered votes expire
	if d.Node(2).VotesExpired() == 0 && d.Node(2).OutboxVotes() == 0 {
		t.Fatal("partitioned node neither buffered nor expired any votes")
	}
	d.Partition(2, false)
	d.Run(6)
	requireConverged(t, d)

	a := d.Accounting()
	if !a.Balanced() {
		t.Fatalf("conservation broken after partition heal: %v", a)
	}
	if a.Expired == 0 && a.Dropped == 0 {
		t.Logf("note: no votes expired or dropped (all reconciled): %v", a)
	}
}

// TestFedDeterminism: identical seeds and fault schedules must yield
// bit-identical canonical logs, leader histories and incident timelines
// — the invariant the Makefile's determinism gate also runs under
// GOMAXPROCS=1 vs 8.
func TestFedDeterminism(t *testing.T) {
	run := func() (hist []int, tl []uint64, seq uint64, dig uint64) {
		d := newTestDeploy(t, 6)
		d.Run(2)
		link := spineLink(t, d.Node(0).Cluster.Topo)
		injs := corrupt(t, d, link, 0.5, 0, 1, 2)
		d.At(d.Now()+2*d.Window(), func() { d.Kill(0, true) })
		d.At(d.Now()+5*d.Window(), func() { d.Kill(0, false) })
		d.At(d.Now()+3*d.Window(), func() { d.DelayVotes(2, true) })
		d.At(d.Now()+6*d.Window(), func() { d.DelayVotes(2, false) })
		d.Run(8)
		for _, in := range injs {
			in.ClearAll()
		}
		d.Run(8)
		for i := 0; i < d.Nodes(); i++ {
			tl = append(tl, d.Node(i).Replica().TimelineDigest())
		}
		r0 := d.Node(0).Replica()
		return d.LeaderHistory(), tl, r0.AppliedSeq(), r0.Digest()
	}

	h1, t1, s1, d1 := run()
	h2, t2, s2, d2 := run()
	if fmt.Sprint(h1) != fmt.Sprint(h2) {
		t.Fatalf("leader history diverged:\n%v\n%v", h1, h2)
	}
	if fmt.Sprint(t1) != fmt.Sprint(t2) {
		t.Fatalf("timeline digests diverged:\n%v\n%v", t1, t2)
	}
	if s1 != s2 || d1 != d2 {
		t.Fatalf("canonical log diverged: seq %d/%d digest %x/%x", s1, s2, d1, d2)
	}
}

// TestFedQuorumStatus exercises the api.PeerSource view: healthy nodes
// report quorum OK; an isolated node reports degraded with a reason.
func TestFedQuorumStatus(t *testing.T) {
	d := newTestDeploy(t, 7)
	d.Run(3)
	st := d.Node(0).FedStatus()
	if !st.QuorumOK || st.Role != "leader" || st.Leader != 0 {
		t.Fatalf("healthy node 0 status: %+v", st)
	}
	if len(st.Peers) != 2 {
		t.Fatalf("want 2 peers, got %+v", st.Peers)
	}
	for _, p := range st.Peers {
		if !p.Alive || p.LastHeartbeatAge != 0 {
			t.Fatalf("healthy peer not alive: %+v", p)
		}
	}

	d.Partition(2, true)
	d.Run(3)
	st2 := d.Node(2).FedStatus()
	if st2.QuorumOK {
		t.Fatalf("isolated node still claims quorum: %+v", st2)
	}
	if st2.Reason == "" {
		t.Fatal("degraded status carries no reason")
	}
	// The connected majority keeps quorum.
	if st0 := d.Node(0).FedStatus(); !st0.QuorumOK {
		t.Fatalf("majority side lost quorum: %+v", st0)
	}
}
