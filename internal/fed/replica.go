package fed

import (
	"fmt"
	"sort"

	"rpingmesh/internal/alert"
	"rpingmesh/internal/analyzer"
	"rpingmesh/internal/proto"
	"rpingmesh/internal/sim"
)

// maxLogRounds bounds the retained round log. A follower further behind
// than this cannot be caught up incrementally and would need a snapshot
// transfer; at one round per 20 s window the default retains a day.
const maxLogRounds = 4096

// voteRec is the evaluator's memory of one node's latest vote for one
// entity/class.
type voteRec struct {
	window   int
	sev      alert.Severity
	count    int
	evidence int
}

// entState is the evaluator's per-(entity, class) state: who voted and
// who covered, each with the window they last did.
type entState struct {
	votes map[int]voteRec
	cover map[int]int
}

// DropStats accounts for every vote a replica's commit path refused to
// fold — the "accounted as dropped" leg of the vote conservation law.
type DropStats struct {
	// Deduped votes arrived in a (node, window) batch already committed
	// (retransmission after an ack was lost).
	Deduped uint64
	// Expired votes arrived older than the overlap horizon — they could
	// no longer count toward any quorum.
	Expired uint64
	// Rejected votes failed signature or protocol-version verification.
	Rejected uint64
}

// Total sums all drop legs.
func (d DropStats) Total() uint64 { return d.Deduped + d.Expired + d.Rejected }

// Replica is the replicated coordination state machine every node runs:
// the hash-chained round log, the quorum evaluator folding committed
// vote rounds, and the node-local copy of the *global* alert.Engine the
// evaluator feeds. Identical logs produce identical incident timelines
// on every replica — that, not state transfer, is how failover keeps
// the incident history intact.
//
// Replica is not safe for concurrent use; the deployment's coordination
// step (or the live daemon's window loop) drives it from one goroutine.
type Replica struct {
	cfg       Config
	windowDur sim.Time

	log     []proto.Round
	logBase uint64 // Seq of log[0] (log may be trimmed)
	applied uint64
	digest  uint64

	ents map[voteKey]*entState
	seen map[[2]int]bool // (node, window) batches already committed

	engine   *alert.Engine
	timeline []string
	tlDigest uint64

	votesCounted uint64
	drops        DropStats
}

// NewReplica builds a replica. windowDur is the global analysis window
// length; it only stamps synthesized report times, so any positive value
// works for wall-clock deployments.
func NewReplica(cfg Config, windowDur sim.Time) *Replica {
	cfg.setDefaults()
	if windowDur <= 0 {
		windowDur = 20 * sim.Second
	}
	r := &Replica{
		cfg:       cfg,
		windowDur: windowDur,
		ents:      make(map[voteKey]*entState),
		seen:      make(map[[2]int]bool),
		engine:    alert.NewEngine(cfg.Alert),
		tlDigest:  newSig(cfg.Secret).h,
	}
	r.engine.AddNotifier(alert.NotifierFunc(r.recordEvent))
	return r
}

// recordEvent appends one alert transition to the replica's timeline and
// folds it into the rolling timeline digest — the quantity two replicas
// (or two runs) compare to prove bit-identical incident histories.
func (r *Replica) recordEvent(ev alert.Event) {
	line := fmt.Sprintf("w%d %s #%d %s sev=%s",
		ev.Window, ev.Type, ev.Incident.ID, ev.Incident.Key, ev.Incident.Severity)
	r.timeline = append(r.timeline, line)
	s := &sigWriter{h: r.tlDigest}
	s.str(line)
	r.tlDigest = s.h
}

// Engine exposes the replica's global incident engine (console backend).
func (r *Replica) Engine() *alert.Engine { return r.engine }

// AppliedSeq is the highest committed round sequence number applied.
func (r *Replica) AppliedSeq() uint64 { return r.applied }

// Digest is the hash-chain head after the last applied round.
func (r *Replica) Digest() uint64 { return r.digest }

// VotesCounted is the total number of votes folded from committed
// rounds since birth (conservation's "counted" leg).
func (r *Replica) VotesCounted() uint64 { return r.votesCounted }

// Drops snapshots the commit path's drop accounting.
func (r *Replica) Drops() DropStats { return r.drops }

// Timeline returns a copy of the alert transition log.
func (r *Replica) Timeline() []string {
	return append([]string(nil), r.timeline...)
}

// TimelineDigest summarizes the whole incident history in one value.
func (r *Replica) TimelineDigest() uint64 { return r.tlDigest }

// Seen reports whether a (node, window) vote batch is already committed.
func (r *Replica) Seen(node, window int) bool {
	return r.seen[[2]int{node, window}]
}

// RoundsSince returns the committed rounds with Seq > seq, for
// IncidentSync catch-up. Nil if the replica has nothing newer or the
// suffix was trimmed past the request.
func (r *Replica) RoundsSince(seq uint64) []proto.Round {
	if seq >= r.applied || len(r.log) == 0 {
		return nil
	}
	if seq+1 < r.logBase {
		return nil // trimmed beyond reach; needs a snapshot, not a suffix
	}
	start := int(seq + 1 - r.logBase)
	out := make([]proto.Round, len(r.log)-start)
	copy(out, r.log[start:])
	return out
}

// roundDigest chains one round's content onto prev. Batches contribute
// their signatures, which already bind every vote and claim.
func roundDigest(secret, prev uint64, rd *proto.Round) uint64 {
	s := newSig(secret)
	s.u64(prev)
	s.u64(rd.Seq)
	s.int(rd.Window)
	s.int(rd.Leader)
	for _, b := range rd.Batches {
		s.u64(b.Sig)
	}
	return s.h
}

// Commit builds, applies and returns the next round from the accepted
// batches — the leader's step. Batches are canonically ordered, verified,
// deduplicated against the committed log and expired against the overlap
// horizon here, so the round broadcast to followers is exactly what this
// replica folded. The drop legs land in Drops().
func (r *Replica) Commit(leader, window int, batches []proto.VoteBatch) (proto.Round, error) {
	sort.Slice(batches, func(i, j int) bool {
		if batches[i].Node != batches[j].Node {
			return batches[i].Node < batches[j].Node
		}
		if batches[i].Window != batches[j].Window {
			return batches[i].Window < batches[j].Window
		}
		return batches[i].Version < batches[j].Version
	})
	accepted := make([]proto.VoteBatch, 0, len(batches))
	for _, b := range batches {
		switch {
		case VerifyBatch(r.cfg.Secret, b) != nil:
			r.drops.Rejected += uint64(len(b.Votes))
		case r.Seen(b.Node, b.Window):
			r.drops.Deduped += uint64(len(b.Votes))
		case b.Window <= window-r.cfg.VoteOverlap:
			r.drops.Expired += uint64(len(b.Votes))
		default:
			accepted = append(accepted, b)
		}
	}
	rd := proto.Round{
		Seq: r.applied + 1, Window: window, Leader: leader,
		PrevDigest: r.digest, Batches: accepted,
	}
	rd.Digest = roundDigest(r.cfg.Secret, r.digest, &rd)
	if err := r.Apply(rd); err != nil {
		return proto.Round{}, err
	}
	return rd, nil
}

// Apply folds one committed round: verify the chain, fold every batch's
// votes and coverage into the evaluator, then run the quorum rule and
// feed the synthesized window into the alert engine. Returns an error —
// without mutating state — if the round does not extend this replica's
// log (a gap, a replay, or a digest divergence; the chaos invariants
// treat any of these as a federation bug).
func (r *Replica) Apply(rd proto.Round) error {
	if rd.Seq != r.applied+1 {
		return fmt.Errorf("fed: round seq %d does not extend applied %d", rd.Seq, r.applied)
	}
	if rd.PrevDigest != r.digest {
		return fmt.Errorf("fed: round %d prev-digest %x disagrees with log head %x", rd.Seq, rd.PrevDigest, r.digest)
	}
	if want := roundDigest(r.cfg.Secret, r.digest, &rd); rd.Digest != want {
		return fmt.Errorf("fed: round %d digest %x, recomputed %x (diverged or tampered log)", rd.Seq, rd.Digest, want)
	}
	for _, b := range rd.Batches {
		if err := VerifyBatch(r.cfg.Secret, b); err != nil {
			return fmt.Errorf("fed: committed round %d holds unverifiable batch: %w", rd.Seq, err)
		}
	}

	for _, b := range rd.Batches {
		r.seen[[2]int{b.Node, b.Window}] = true
		r.votesCounted += uint64(len(b.Votes))
		for _, c := range b.Covered {
			st := r.ent(voteKey{Entity: c.Entity, Class: analyzer.ProblemKind(c.Class)})
			if w, ok := st.cover[b.Node]; !ok || b.Window > w {
				st.cover[b.Node] = b.Window
			}
		}
		for _, v := range b.Votes {
			st := r.ent(voteKey{Entity: v.Entity, Class: analyzer.ProblemKind(v.Class)})
			rec := voteRec{window: v.Window, sev: alert.Severity(v.Severity), count: v.Count, evidence: v.Evidence}
			if old, ok := st.votes[b.Node]; !ok || rec.window > old.window ||
				(rec.window == old.window && rec.sev > old.sev) {
				st.votes[b.Node] = rec
			}
			// A voting node evidently observed the entity: count it as
			// covering even if its coverage claim was pruned.
			if w, ok := st.cover[b.Node]; !ok || v.Window > w {
				st.cover[b.Node] = v.Window
			}
		}
	}

	r.applied = rd.Seq
	r.digest = rd.Digest
	if len(r.log) == 0 {
		r.logBase = rd.Seq
	}
	r.log = append(r.log, rd)
	if over := len(r.log) - maxLogRounds; over > 0 {
		r.log = append(r.log[:0], r.log[over:]...)
		r.logBase += uint64(over)
	}

	r.evaluate(rd.Window)
	return nil
}

// ent returns (creating) the state for one key.
func (r *Replica) ent(k voteKey) *entState {
	st, ok := r.ents[k]
	if !ok {
		st = &entState{votes: make(map[int]voteRec), cover: make(map[int]int)}
		r.ents[k] = st
	}
	return st
}

// evaluate prunes horizons, applies the quorum rule at global window w,
// and feeds the synthesized problem set into the alert engine as one
// WindowReport. Quorum: an entity/class is confirmed iff the nodes that
// voted for it within VoteOverlap windows number at least
// min(Q, #nodes covering it within CoverageHorizon), floor 1.
func (r *Replica) evaluate(w int) {
	keys := make([]voteKey, 0, len(r.ents))
	for k, st := range r.ents {
		for n, rec := range st.votes {
			if rec.window <= w-r.cfg.VoteOverlap {
				delete(st.votes, n)
			}
		}
		for n, cw := range st.cover {
			if cw <= w-r.cfg.CoverageHorizon {
				delete(st.cover, n)
			}
		}
		if len(st.votes) == 0 && len(st.cover) == 0 {
			delete(r.ents, k)
			continue
		}
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Entity != keys[j].Entity {
			return keys[i].Entity < keys[j].Entity
		}
		return keys[i].Class < keys[j].Class
	})
	for nw := range r.seen {
		if nw[1] <= w-r.cfg.VoteOverlap-r.cfg.HeartbeatMiss {
			delete(r.seen, nw)
		}
	}

	rep := analyzer.WindowReport{
		Index: w,
		Start: sim.Time(w) * r.windowDur,
		End:   sim.Time(w+1) * r.windowDur,
	}
	for _, k := range keys {
		st := r.ents[k]
		if len(st.votes) == 0 {
			continue
		}
		need := r.cfg.Quorum
		if n := len(st.cover); n < need {
			need = n
		}
		if need < 1 {
			need = 1
		}
		if len(st.votes) < need {
			continue
		}
		var sev alert.Severity
		evidence := 0
		first := true
		for _, rec := range st.votes {
			if first || rec.sev > sev {
				sev = rec.sev
			}
			if rec.evidence > evidence {
				evidence = rec.evidence
			}
			first = false
		}
		rep.Problems = append(rep.Problems, k.problemOf(sev, evidence))
	}
	r.engine.Observe(rep)
}
