// Package faultgen injects the 14 root causes of the paper's Table 2
// into a running cluster, with ground truth recorded so experiments can
// score the Analyzer's localization accuracy — the Fig 6 evaluation.
//
// Causes #1–#5 are hardware failures, #6–#9 misconfigurations, #10–#11
// network congestion, #12–#14 intra-host bottlenecks.
package faultgen

import (
	"fmt"
	"math/rand"

	"rpingmesh/internal/core"
	"rpingmesh/internal/ecmp"
	"rpingmesh/internal/sim"
	"rpingmesh/internal/simnet"
	"rpingmesh/internal/topo"
)

// Cause enumerates Table 2's root causes (numbered as in the paper).
type Cause int

const (
	// FlappingPort (#1): RNIC or switch port flapping between up/down.
	FlappingPort Cause = iota + 1
	// PacketCorruption (#2): drops from damaged fiber / dusty modules.
	PacketCorruption
	// RNICDown (#3): accidental RNIC down.
	RNICDown
	// HostDown (#4): accidental host down.
	HostDown
	// PFCDeadlock (#5): two ports pausing each other, blocking a link.
	PFCDeadlock
	// MissingRouteConfig (#6): RNIC lacks its RDMA routing configuration.
	MissingRouteConfig
	// GIDIndexMissing (#7): RNIC lost the cluster's RDMA GID index.
	GIDIndexMissing
	// ACLError (#8): switch ACL misconfiguration isolating tenant pairs.
	ACLError
	// PFCHeadroomMisconfig (#9): drops during heavy congestion.
	PFCHeadroomMisconfig
	// UnevenLoadBalance (#10): ECMP hash-collision uplink congestion.
	UnevenLoadBalance
	// ServiceInterference (#11): another tenant's traffic sharing links.
	ServiceInterference
	// CPUOverload (#12): end-host CPU saturated.
	CPUOverload
	// PCIeDowngraded (#13): RNIC/GPU PCIe link trained at lower speed,
	// backpressuring into PFC storms.
	PCIeDowngraded
	// PCIeMisconfig (#14): wrong ACS/ATS configuration, same observable
	// as #13.
	PCIeMisconfig
)

// NumCauses is the count of distinct root causes (Table 2).
const NumCauses = 14

func (c Cause) String() string {
	switch c {
	case FlappingPort:
		return "flapping-port"
	case PacketCorruption:
		return "packet-corruption"
	case RNICDown:
		return "rnic-down"
	case HostDown:
		return "host-down"
	case PFCDeadlock:
		return "pfc-deadlock"
	case MissingRouteConfig:
		return "missing-route-config"
	case GIDIndexMissing:
		return "gid-index-missing"
	case ACLError:
		return "acl-error"
	case PFCHeadroomMisconfig:
		return "pfc-headroom-misconfig"
	case UnevenLoadBalance:
		return "uneven-load-balance"
	case ServiceInterference:
		return "service-interference"
	case CPUOverload:
		return "cpu-overload"
	case PCIeDowngraded:
		return "pcie-downgraded"
	case PCIeMisconfig:
		return "pcie-misconfig"
	default:
		return fmt.Sprintf("cause(%d)", int(c))
	}
}

// Category is the paper's problem taxonomy.
type Category int

const (
	// HardwareFailure covers #1–#5.
	HardwareFailure Category = iota
	// Misconfiguration covers #6–#9.
	Misconfiguration
	// NetworkCongestion covers #10–#11.
	NetworkCongestion
	// IntraHostBottleneck covers #12–#14.
	IntraHostBottleneck
)

// CategoryOf maps a cause to its Table-2 category.
func CategoryOf(c Cause) Category {
	switch {
	case c <= PFCDeadlock:
		return HardwareFailure
	case c <= PFCHeadroomMisconfig:
		return Misconfiguration
	case c <= ServiceInterference:
		return NetworkCongestion
	default:
		return IntraHostBottleneck
	}
}

func (cat Category) String() string {
	switch cat {
	case HardwareFailure:
		return "hardware-failure"
	case Misconfiguration:
		return "misconfiguration"
	case NetworkCongestion:
		return "network-congestion"
	case IntraHostBottleneck:
		return "intra-host-bottleneck"
	default:
		return "unknown"
	}
}

// Fault is one injectable problem. Exactly one of Dev/Link/Host is the
// target, depending on the cause.
type Fault struct {
	Cause Cause
	Dev   topo.DeviceID // RNIC-targeted causes
	Link  topo.LinkID   // link/switch-targeted causes
	Host  topo.HostID   // host-targeted causes
	// Severity is cause-specific: drop probability for corruption
	// (default 0.05), CPU load for overload (default 0.97), flow count
	// for congestion (default 4).
	Severity float64
}

// ActiveFault is an injected fault with its undo.
type ActiveFault struct {
	Fault
	Injected sim.Time
	Cleared  sim.Time // zero while active

	clear func()
}

// TrueLocation describes ground truth for localization scoring: either a
// device (RNIC/host problems) or a cable (link problems).
func (a *ActiveFault) TrueLocation() (dev topo.DeviceID, link topo.LinkID, host topo.HostID) {
	return a.Dev, a.Link, a.Host
}

// Injector applies faults to a cluster.
type Injector struct {
	c   *core.Cluster
	rng *rand.Rand

	active  []*ActiveFault
	history []*ActiveFault
}

// NewInjector builds an injector over a cluster.
func NewInjector(c *core.Cluster, seed int64) *Injector {
	return &Injector{c: c, rng: rand.New(rand.NewSource(seed))}
}

// Active returns currently injected faults.
func (in *Injector) Active() []*ActiveFault { return in.active }

// History returns every fault ever injected (including cleared ones).
func (in *Injector) History() []*ActiveFault { return in.history }

// Inject applies a fault and returns its handle.
func (in *Injector) Inject(f Fault) (*ActiveFault, error) {
	af := &ActiveFault{Fault: f, Injected: in.c.Eng.Now()}
	var err error
	switch f.Cause {
	case FlappingPort:
		err = in.injectFlap(af)
	case PacketCorruption:
		err = in.injectCorruption(af)
	case RNICDown:
		err = in.devFault(af, func(d deviceLike) { d.SetUp(false) }, func(d deviceLike) { d.SetUp(true) })
	case HostDown:
		err = in.injectHostDown(af)
	case PFCDeadlock:
		err = in.linkFault(af, func(l topo.LinkID) { in.c.Net.SetPFCBlocked(l, true) }, func(l topo.LinkID) { in.c.Net.SetPFCBlocked(l, false) })
	case MissingRouteConfig, GIDIndexMissing:
		err = in.devFault(af, func(d deviceLike) { d.SetMisconfigured(true) }, func(d deviceLike) { d.SetMisconfigured(false) })
	case ACLError:
		err = in.injectACL(af)
	case PFCHeadroomMisconfig:
		err = in.linkFault(af, func(l topo.LinkID) { in.c.Net.SetBadHeadroom(l, true) }, func(l topo.LinkID) { in.c.Net.SetBadHeadroom(l, false) })
	case UnevenLoadBalance, ServiceInterference:
		err = in.injectCongestion(af)
	case CPUOverload:
		err = in.injectCPUOverload(af)
	case PCIeDowngraded, PCIeMisconfig:
		err = in.injectPCIe(af)
	default:
		err = fmt.Errorf("faultgen: unknown cause %v", f.Cause)
	}
	if err != nil {
		return nil, err
	}
	in.active = append(in.active, af)
	in.history = append(in.history, af)
	return af, nil
}

// Clear undoes a fault.
func (in *Injector) Clear(af *ActiveFault) {
	if af.clear == nil {
		return
	}
	af.clear()
	af.clear = nil
	af.Cleared = in.c.Eng.Now()
	for i, a := range in.active {
		if a == af {
			in.active = append(in.active[:i], in.active[i+1:]...)
			break
		}
	}
}

// ClearAll undoes every active fault.
func (in *Injector) ClearAll() {
	for len(in.active) > 0 {
		in.Clear(in.active[0])
	}
}

type deviceLike interface {
	SetUp(bool)
	SetMisconfigured(bool)
}

func (in *Injector) device(af *ActiveFault) (deviceLike, error) {
	d := in.c.Device(af.Dev)
	if d == nil {
		return nil, fmt.Errorf("faultgen: %v needs a valid Dev target, got %q", af.Cause, af.Dev)
	}
	return d, nil
}

func (in *Injector) devFault(af *ActiveFault, apply, undo func(deviceLike)) error {
	d, err := in.device(af)
	if err != nil {
		return err
	}
	apply(d)
	af.clear = func() { undo(d) }
	return nil
}

func (in *Injector) linkFault(af *ActiveFault, apply, undo func(topo.LinkID)) error {
	if int(af.Link) < 0 || int(af.Link) >= len(in.c.Topo.Links) {
		return fmt.Errorf("faultgen: %v needs a valid Link target, got %v", af.Cause, af.Link)
	}
	l := af.Link
	apply(l)
	af.clear = func() { undo(l) }
	return nil
}

// injectFlap toggles the target up/down at a few-hundred-ms cadence: a
// Dev target flaps the RNIC; a Link target flaps the switch port (both
// directions of the cable).
func (in *Injector) injectFlap(af *ActiveFault) error {
	period := 400 * sim.Millisecond
	if af.Dev != "" {
		d := in.c.Device(af.Dev)
		if d == nil {
			return fmt.Errorf("faultgen: flap target %q unknown", af.Dev)
		}
		// An RNIC flap is a host-port flap: the device AND its cable to
		// the ToR bounce together.
		hostLink := in.c.Topo.LinkBetween(af.Dev, in.c.Topo.RNICs[af.Dev].ToR)
		down := false
		t := in.c.Eng.Every(period, period, func() {
			down = !down
			d.SetUp(!down)
			in.c.Net.SetLinkDown(hostLink, down)
		})
		af.clear = func() {
			t.Stop()
			d.SetUp(true)
			in.c.Net.SetLinkDown(hostLink, false)
		}
		return nil
	}
	if int(af.Link) < 0 || int(af.Link) >= len(in.c.Topo.Links) {
		return fmt.Errorf("faultgen: flap needs Dev or Link target")
	}
	l := af.Link
	down := false
	t := in.c.Eng.Every(period, period, func() {
		down = !down
		in.c.Net.SetLinkDown(l, down)
	})
	af.clear = func() { t.Stop(); in.c.Net.SetLinkDown(l, false) }
	return nil
}

func (in *Injector) injectCorruption(af *ActiveFault) error {
	sev := af.Severity
	if af.Dev != "" {
		if sev <= 0 {
			// Damaged host cables drop heavily; above the 10 % ToR-mesh
			// detection threshold, as production corruption cases are.
			sev = 0.25
		}
		d := in.c.Device(af.Dev)
		if d == nil {
			return fmt.Errorf("faultgen: corruption target %q unknown", af.Dev)
		}
		d.SetRxCorruption(sev)
		af.clear = func() { d.SetRxCorruption(0) }
		return nil
	}
	if sev <= 0 {
		sev = 0.05
	}
	return in.linkFault(af,
		func(l topo.LinkID) { in.c.Net.SetLinkCorruption(l, sev) },
		func(l topo.LinkID) { in.c.Net.SetLinkCorruption(l, 0) })
}

func (in *Injector) injectHostDown(af *ActiveFault) error {
	node := in.c.Host(af.Host)
	if node == nil {
		return fmt.Errorf("faultgen: host %q unknown", af.Host)
	}
	node.Host.SetDown(true)
	af.clear = func() { node.Host.SetDown(false) }
	return nil
}

// injectACL denies traffic between a random same-cluster RNIC pair at the
// target link's switch (public-cloud tenant isolation gone wrong, #8).
func (in *Injector) injectACL(af *ActiveFault) error {
	d := in.c.Device(af.Dev)
	if d == nil {
		return fmt.Errorf("faultgen: ACL needs the victim RNIC in Dev")
	}
	// Deny everything to/from the victim at its ToR: the tenant's other
	// hosts can no longer reach it.
	tor := in.c.Topo.RNICs[af.Dev].ToR
	var undo []func()
	for _, other := range in.c.Topo.AllRNICs() {
		if other == af.Dev {
			continue
		}
		src := in.c.Topo.RNICs[other].IP
		dst := d.IP()
		in.c.Net.DenyACL(tor, src, dst)
		in.c.Net.DenyACL(tor, dst, src)
		s, dd := src, dst
		undo = append(undo, func() {
			in.c.Net.AllowACL(tor, s, dd)
			in.c.Net.AllowACL(tor, dd, s)
		})
	}
	af.clear = func() {
		for _, u := range undo {
			u()
		}
	}
	return nil
}

// injectCongestion adds background flows that pile onto the target link
// (hash collisions #10 / another tenant #11). Severity is the flow count.
func (in *Injector) injectCongestion(af *ActiveFault) error {
	if int(af.Link) < 0 || int(af.Link) >= len(in.c.Topo.Links) {
		return fmt.Errorf("faultgen: congestion needs a Link target")
	}
	n := int(af.Severity)
	if n <= 0 {
		n = 4
	}
	flows := in.flowsThrough(af.Link, n)
	if len(flows) == 0 {
		return fmt.Errorf("faultgen: found no tuples crossing link %v", af.Link)
	}
	af.clear = func() {
		for _, f := range flows {
			in.c.Net.RemoveFlow(f)
		}
	}
	return nil
}

// flowsThrough searches random RNIC pairs and source ports for tuples
// whose ECMP path crosses the target link, installing up to n full-rate
// flows.
func (in *Injector) flowsThrough(link topo.LinkID, n int) []simnet.FlowID {
	var out []simnet.FlowID
	rnics := in.c.Topo.AllRNICs()
	for attempt := 0; attempt < 4000 && len(out) < n; attempt++ {
		src := rnics[in.rng.Intn(len(rnics))]
		dst := rnics[in.rng.Intn(len(rnics))]
		if src == dst || in.c.Topo.RNICs[src].Host == in.c.Topo.RNICs[dst].Host {
			continue
		}
		tuple := ecmp.RoCETuple(in.c.Topo.RNICs[src].IP, in.c.Topo.RNICs[dst].IP, uint16(in.rng.Intn(60000-1024)+1024))
		path, err := in.c.Topo.Route(src, dst, tuple.Hasher())
		if err != nil {
			continue
		}
		hit := false
		for _, l := range path {
			if l == link {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		f, err := in.c.Net.AddFlow(simnet.FlowSpec{Src: src, Dst: dst, Tuple: tuple, DemandGbps: in.c.Topo.Links[link].CapacityGbps})
		if err != nil {
			continue
		}
		out = append(out, f.ID)
	}
	return out
}

func (in *Injector) injectCPUOverload(af *ActiveFault) error {
	node := in.c.Host(af.Host)
	if node == nil {
		return fmt.Errorf("faultgen: CPU overload needs a Host target")
	}
	sev := af.Severity
	if sev <= 0 {
		sev = 0.97
	}
	prev := node.Host.Load()
	node.Host.SetLoad(sev)
	af.clear = func() { node.Host.SetLoad(prev) }
	return nil
}

// injectPCIe models #13/#14: the RNIC cannot drain at line rate, sends
// PFC pauses, and the ToR egress port toward it stalls — a PFC storm
// raising RTT to that RNIC (Fig 8 right). Severity is the standing pause
// delay in nanoseconds (default 300 µs).
func (in *Injector) injectPCIe(af *ActiveFault) error {
	r, ok := in.c.Topo.RNICs[af.Dev]
	if !ok {
		return fmt.Errorf("faultgen: PCIe fault needs the victim RNIC in Dev")
	}
	down := in.c.Topo.LinkBetween(r.ToR, af.Dev)
	sev := sim.Time(af.Severity)
	if sev <= 0 {
		sev = 300 * sim.Microsecond
	}
	in.c.Net.SetLinkExtraDelay(down, sev)
	af.clear = func() { in.c.Net.SetLinkExtraDelay(down, 0) }
	return nil
}
