package faultgen

import (
	"testing"

	"rpingmesh/internal/analyzer"
	"rpingmesh/internal/core"
	"rpingmesh/internal/sim"
	"rpingmesh/internal/topo"
)

func cluster(t testing.TB, seed int64) *core.Cluster {
	t.Helper()
	tp, err := topo.BuildClos(topo.ClosConfig{
		Pods: 2, ToRsPerPod: 2, AggsPerPod: 2, Spines: 2,
		HostsPerToR: 2, RNICsPerHost: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.NewCluster(core.Config{Topology: tp, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCauseStringsAndCategories(t *testing.T) {
	for c := FlappingPort; c <= PCIeMisconfig; c++ {
		if c.String() == "" {
			t.Fatalf("cause %d empty string", c)
		}
	}
	if Cause(99).String() == "" || Category(99).String() == "" {
		t.Fatal("unknown enums must stringify")
	}
	cases := map[Cause]Category{
		FlappingPort:         HardwareFailure,
		PFCDeadlock:          HardwareFailure,
		MissingRouteConfig:   Misconfiguration,
		PFCHeadroomMisconfig: Misconfiguration,
		UnevenLoadBalance:    NetworkCongestion,
		ServiceInterference:  NetworkCongestion,
		CPUOverload:          IntraHostBottleneck,
		PCIeMisconfig:        IntraHostBottleneck,
	}
	for c, want := range cases {
		if got := CategoryOf(c); got != want {
			t.Fatalf("CategoryOf(%v) = %v, want %v", c, got, want)
		}
	}
	if NumCauses != int(PCIeMisconfig) {
		t.Fatalf("NumCauses = %d, want %d", NumCauses, int(PCIeMisconfig))
	}
}

func TestInjectAndClearRNICDown(t *testing.T) {
	c := cluster(t, 1)
	in := NewInjector(c, 1)
	dev := c.Topo.AllRNICs()[0]
	af, err := in.Inject(Fault{Cause: RNICDown, Dev: dev})
	if err != nil {
		t.Fatal(err)
	}
	if c.Device(dev).Up() {
		t.Fatal("device still up")
	}
	if len(in.Active()) != 1 || len(in.History()) != 1 {
		t.Fatal("bookkeeping wrong")
	}
	c.Run(sim.Second) // advance so Cleared gets a nonzero stamp
	in.Clear(af)
	if !c.Device(dev).Up() {
		t.Fatal("device still down after clear")
	}
	if len(in.Active()) != 0 {
		t.Fatal("still active after clear")
	}
	if af.Cleared == 0 {
		t.Fatal("Cleared timestamp not set")
	}
	in.Clear(af) // idempotent
}

func TestInjectValidatesTargets(t *testing.T) {
	c := cluster(t, 2)
	in := NewInjector(c, 1)
	bad := []Fault{
		{Cause: RNICDown},
		{Cause: RNICDown, Dev: "nope"},
		{Cause: HostDown, Host: "nope"},
		{Cause: PFCDeadlock, Link: -1},
		{Cause: PFCDeadlock, Link: 99999},
		{Cause: CPUOverload},
		{Cause: PCIeDowngraded, Dev: "nope"},
		{Cause: ACLError},
		{Cause: UnevenLoadBalance, Link: -1},
		{Cause: Cause(99)},
		{Cause: FlappingPort, Link: -1},
	}
	for i, f := range bad {
		if _, err := in.Inject(f); err == nil {
			t.Errorf("case %d: Inject(%+v) succeeded", i, f)
		}
	}
	if len(in.Active()) != 0 {
		t.Fatal("failed injections left active faults")
	}
}

func TestFlappingToggles(t *testing.T) {
	c := cluster(t, 3)
	in := NewInjector(c, 1)
	dev := c.Topo.AllRNICs()[0]
	af, err := in.Inject(Fault{Cause: FlappingPort, Dev: dev})
	if err != nil {
		t.Fatal(err)
	}
	downSeen, upSeen := false, false
	for i := 0; i < 20; i++ {
		c.Run(300 * sim.Millisecond)
		if c.Device(dev).Up() {
			upSeen = true
		} else {
			downSeen = true
		}
	}
	if !downSeen || !upSeen {
		t.Fatalf("flap did not toggle: down=%v up=%v", downSeen, upSeen)
	}
	in.Clear(af)
	c.Run(2 * sim.Second)
	if !c.Device(dev).Up() {
		t.Fatal("device left down after flap cleared")
	}
}

func TestLinkFlapToggles(t *testing.T) {
	c := cluster(t, 4)
	in := NewInjector(c, 1)
	link := c.Topo.LinkBetween("tor-0-0", "agg-0-0")
	af, err := in.Inject(Fault{Cause: FlappingPort, Link: link})
	if err != nil {
		t.Fatal(err)
	}
	downSeen, upSeen := false, false
	for i := 0; i < 20; i++ {
		c.Run(300 * sim.Millisecond)
		if c.Net.LinkDown(link) {
			downSeen = true
		} else {
			upSeen = true
		}
	}
	if !downSeen || !upSeen {
		t.Fatal("link flap did not toggle")
	}
	in.Clear(af)
	if c.Net.LinkDown(link) {
		t.Fatal("link left down")
	}
}

func TestACLInjectionBlocksVictim(t *testing.T) {
	c := cluster(t, 5)
	c.StartAgents()
	c.Run(30 * sim.Second)
	in := NewInjector(c, 1)
	victim := c.Topo.AllRNICs()[0]
	af, err := in.Inject(Fault{Cause: ACLError, Dev: victim})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(45 * sim.Second)
	// The victim becomes unreachable: detected as an RNIC problem (the
	// ACL sits at its ToR ingress, indistinguishable from an RNIC fault
	// from the probes' viewpoint at this blast radius).
	found := false
	for _, p := range c.Analyzer.Problems() {
		if p.Kind == analyzer.ProblemRNIC && p.Device == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("ACL isolation not detected: %+v", c.Analyzer.Problems())
	}
	in.Clear(af)
}

func TestCongestionInjection(t *testing.T) {
	c := cluster(t, 6)
	in := NewInjector(c, 1)
	link := c.Topo.LinkBetween("tor-0-0", "agg-0-0")
	af, err := in.Inject(Fault{Cause: UnevenLoadBalance, Link: link, Severity: 3})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(100 * sim.Millisecond)
	if c.Net.QueueBytesOn(link) <= 0 {
		t.Fatal("no queue built on target link")
	}
	if c.Net.Flows() == 0 {
		t.Fatal("no background flows installed")
	}
	in.Clear(af)
	if c.Net.Flows() != 0 {
		t.Fatal("background flows not removed")
	}
}

func TestPCIeStormRaisesRTTToVictim(t *testing.T) {
	c := cluster(t, 7)
	c.StartAgents()
	c.Run(30 * sim.Second)
	before, _ := c.Analyzer.LastReport()

	in := NewInjector(c, 1)
	victim := c.Topo.AllRNICs()[0]
	if _, err := in.Inject(Fault{Cause: PCIeDowngraded, Dev: victim}); err != nil {
		t.Fatal(err)
	}
	c.Run(45 * sim.Second)
	after, _ := c.Analyzer.LastReport()
	if after.Cluster.RTT.P999 < before.Cluster.RTT.P999*3 {
		t.Fatalf("PFC storm invisible in tail RTT: %v -> %v", before.Cluster.RTT.P999, after.Cluster.RTT.P999)
	}
	// And no spurious drop problems.
	for _, p := range c.Analyzer.Problems() {
		if p.Kind == analyzer.ProblemRNIC || p.Kind == analyzer.ProblemSwitchLink {
			t.Fatalf("PFC storm produced drop problems: %+v", p)
		}
	}
}

func TestCPUOverloadRestoresLoad(t *testing.T) {
	c := cluster(t, 8)
	in := NewInjector(c, 1)
	host := c.Topo.AllHosts()[0]
	c.Host(host).Host.SetLoad(0.2)
	af, err := in.Inject(Fault{Cause: CPUOverload, Host: host})
	if err != nil {
		t.Fatal(err)
	}
	if c.Host(host).Host.Load() < 0.9 {
		t.Fatal("load not raised")
	}
	in.Clear(af)
	if c.Host(host).Host.Load() != 0.2 {
		t.Fatalf("load not restored: %v", c.Host(host).Host.Load())
	}
}

func TestGenerateScheduleShape(t *testing.T) {
	c := cluster(t, 9)
	in := NewInjector(c, 42)
	sched := in.GenerateSchedule(ScheduleConfig{
		Duration: 10 * sim.Hour,
		EventsPerHour: map[Cause]float64{
			FlappingPort: 2,
			RNICDown:     1,
			CPUOverload:  1,
		},
	})
	if len(sched) < 20 || len(sched) > 80 {
		t.Fatalf("schedule size = %d, expected ~40 for 4 events/hour x 10h", len(sched))
	}
	last := sim.Time(-1)
	for _, ev := range sched {
		if ev.At < last {
			t.Fatal("schedule not sorted")
		}
		last = ev.At
		if ev.At >= 10*sim.Hour {
			t.Fatal("event beyond horizon")
		}
		if ev.Duration < 30*sim.Second {
			t.Fatal("fault shorter than detection floor")
		}
		f := ev.Fault
		if f.Dev == "" && f.Host == "" && f.Link == 0 && f.Cause != PFCDeadlock {
			// Link 0 is a valid ID, so only sanity-check that SOME target
			// field is plausibly set for device/host causes.
			if f.Cause == RNICDown || f.Cause == HostDown || f.Cause == CPUOverload {
				t.Fatalf("no target on %+v", f)
			}
		}
	}
}

func TestPlayInjectsAndClears(t *testing.T) {
	c := cluster(t, 10)
	in := NewInjector(c, 11)
	dev := c.Topo.AllRNICs()[0]
	events := []Event{
		{At: sim.Second, Duration: 2 * sim.Second, Fault: Fault{Cause: RNICDown, Dev: dev}},
	}
	handles := in.Play(events)
	c.Run(1500 * sim.Millisecond)
	if c.Device(dev).Up() {
		t.Fatal("fault not injected on schedule")
	}
	if len(*handles) != 1 {
		t.Fatal("handle not recorded")
	}
	c.Run(3 * sim.Second)
	if !c.Device(dev).Up() {
		t.Fatal("fault not cleared on schedule")
	}
	if len(in.Active()) != 0 {
		t.Fatal("active faults remain")
	}
}

func TestClearAll(t *testing.T) {
	c := cluster(t, 12)
	in := NewInjector(c, 1)
	ids := c.Topo.AllRNICs()
	for i := 0; i < 3; i++ {
		if _, err := in.Inject(Fault{Cause: RNICDown, Dev: ids[i]}); err != nil {
			t.Fatal(err)
		}
	}
	in.ClearAll()
	if len(in.Active()) != 0 {
		t.Fatal("ClearAll left faults")
	}
	for i := 0; i < 3; i++ {
		if !c.Device(ids[i]).Up() {
			t.Fatal("device left down")
		}
	}
}
