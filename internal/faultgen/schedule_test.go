package faultgen

import (
	"testing"

	"rpingmesh/internal/sim"
)

// Poisson rates come out roughly right over a long horizon.
func TestScheduleRatesApproximate(t *testing.T) {
	c := cluster(t, 20)
	in := NewInjector(c, 77)
	const hours = 50
	sched := in.GenerateSchedule(ScheduleConfig{
		Duration: hours * sim.Hour,
		EventsPerHour: map[Cause]float64{
			RNICDown:    2,
			HostDown:    0.5,
			PFCDeadlock: 1,
		},
	})
	counts := map[Cause]int{}
	for _, ev := range sched {
		counts[ev.Fault.Cause]++
	}
	check := func(cause Cause, perHour float64) {
		got := float64(counts[cause]) / hours
		if got < perHour*0.6 || got > perHour*1.4 {
			t.Fatalf("%v rate = %.2f/h, want ≈%.2f", cause, got, perHour)
		}
	}
	check(RNICDown, 2)
	check(HostDown, 0.5)
	check(PFCDeadlock, 1)
	if counts[FlappingPort] != 0 {
		t.Fatal("unlisted cause scheduled")
	}
}

// Targets match their cause's shape.
func TestScheduleTargetShapes(t *testing.T) {
	c := cluster(t, 21)
	in := NewInjector(c, 3)
	sched := in.GenerateSchedule(ScheduleConfig{
		Duration: 20 * sim.Hour,
		EventsPerHour: map[Cause]float64{
			RNICDown: 2, HostDown: 2, PFCDeadlock: 2, CPUOverload: 2,
			FlappingPort: 2, PacketCorruption: 2, PCIeDowngraded: 2,
		},
	})
	if len(sched) == 0 {
		t.Fatal("empty schedule")
	}
	for _, ev := range sched {
		f := ev.Fault
		switch f.Cause {
		case RNICDown, PCIeDowngraded:
			if f.Dev == "" {
				t.Fatalf("%v without device target", f.Cause)
			}
			if _, ok := c.Topo.RNICs[f.Dev]; !ok {
				t.Fatalf("%v targets unknown device %q", f.Cause, f.Dev)
			}
		case HostDown, CPUOverload:
			if f.Host == "" {
				t.Fatalf("%v without host target", f.Cause)
			}
		case PFCDeadlock:
			l := c.Topo.Links[f.Link]
			if _, ok := c.Topo.Switches[l.From]; !ok {
				t.Fatalf("PFC deadlock on non-fabric link %v", f.Link)
			}
			if _, ok := c.Topo.Switches[l.To]; !ok {
				t.Fatalf("PFC deadlock on non-fabric link %v", f.Link)
			}
		case FlappingPort, PacketCorruption:
			if f.Dev == "" && f.Link == 0 {
				// Link 0 is valid, but Dev=="" and Link==0 together is
				// suspicious only if link 0 is a fabric link... accept.
				_ = f
			}
		}
	}
}

// Schedules are deterministic per seed.
func TestScheduleDeterminism(t *testing.T) {
	mk := func(seed int64) []Event {
		c := cluster(t, 22)
		in := NewInjector(c, seed)
		return in.GenerateSchedule(ScheduleConfig{
			Duration:      5 * sim.Hour,
			EventsPerHour: map[Cause]float64{RNICDown: 3, FlappingPort: 3},
		})
	}
	a, b := mk(5), mk(5)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c2 := mk(6)
	same := len(a) == len(c2)
	if same {
		for i := range a {
			if a[i] != c2[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestRandomPickers(t *testing.T) {
	c := cluster(t, 23)
	in := NewInjector(c, 9)
	seenRNIC := map[string]bool{}
	for i := 0; i < 50; i++ {
		seenRNIC[string(in.RandomRNIC())] = true
	}
	if len(seenRNIC) < 5 {
		t.Fatalf("RandomRNIC diversity = %d", len(seenRNIC))
	}
	for i := 0; i < 20; i++ {
		l := in.RandomFabricLink()
		link := c.Topo.Links[l]
		if _, ok := c.Topo.Switches[link.From]; !ok {
			t.Fatalf("fabric link from non-switch: %+v", link)
		}
		if _, ok := c.Topo.Switches[link.To]; !ok {
			t.Fatalf("fabric link to non-switch: %+v", link)
		}
	}
	if in.RandomHost() == "" {
		t.Fatal("RandomHost empty")
	}
}
