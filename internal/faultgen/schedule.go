package faultgen

import (
	"sort"

	"rpingmesh/internal/sim"
	"rpingmesh/internal/topo"
)

// Event is one scheduled fault: injected at At, cleared after Duration.
type Event struct {
	At       sim.Time
	Duration sim.Time
	Fault    Fault
}

// ScheduleConfig drives the Poisson fault generator used by the
// month-scale localization-accuracy experiment (Fig 6).
type ScheduleConfig struct {
	// Duration is the schedule horizon.
	Duration sim.Time
	// EventsPerHour is the Poisson rate per cause; absent causes never
	// fire.
	EventsPerHour map[Cause]float64
	// MeanFaultDuration is the mean of the exponential fault lifetime.
	// Defaults to 2 minutes.
	MeanFaultDuration sim.Time
}

// RandomRNIC picks a uniform RNIC.
func (in *Injector) RandomRNIC() topo.DeviceID {
	ids := in.c.Topo.AllRNICs()
	return ids[in.rng.Intn(len(ids))]
}

// RandomHost picks a uniform host.
func (in *Injector) RandomHost() topo.HostID {
	ids := in.c.Topo.AllHosts()
	return ids[in.rng.Intn(len(ids))]
}

// RandomFabricLink picks a uniform switch-to-switch directed link.
func (in *Injector) RandomFabricLink() topo.LinkID {
	var fabric []topo.LinkID
	for _, l := range in.c.Topo.Links {
		_, fromSwitch := in.c.Topo.Switches[l.From]
		_, toSwitch := in.c.Topo.Switches[l.To]
		if fromSwitch && toSwitch {
			fabric = append(fabric, l.ID)
		}
	}
	return fabric[in.rng.Intn(len(fabric))]
}

// randomTarget fills in a random target appropriate to the cause.
func (in *Injector) randomTarget(c Cause) Fault {
	f := Fault{Cause: c}
	switch c {
	case FlappingPort:
		// Half RNIC flaps, half switch-port flaps.
		if in.rng.Intn(2) == 0 {
			f.Dev = in.RandomRNIC()
		} else {
			f.Link = in.RandomFabricLink()
		}
	case PacketCorruption:
		if in.rng.Intn(2) == 0 {
			f.Dev = in.RandomRNIC()
		} else {
			f.Link = in.RandomFabricLink()
		}
	case RNICDown, MissingRouteConfig, GIDIndexMissing, ACLError, PCIeDowngraded, PCIeMisconfig:
		f.Dev = in.RandomRNIC()
	case HostDown, CPUOverload:
		f.Host = in.RandomHost()
	case PFCDeadlock, PFCHeadroomMisconfig, UnevenLoadBalance, ServiceInterference:
		f.Link = in.RandomFabricLink()
	}
	return f
}

// GenerateSchedule draws a Poisson schedule with random targets.
func (in *Injector) GenerateSchedule(cfg ScheduleConfig) []Event {
	if cfg.MeanFaultDuration <= 0 {
		cfg.MeanFaultDuration = 2 * sim.Minute
	}
	// Iterate causes in a fixed order: map iteration order would consume
	// the random stream differently on every run and break per-seed
	// reproducibility.
	causes := make([]Cause, 0, len(cfg.EventsPerHour))
	for cause := range cfg.EventsPerHour {
		causes = append(causes, cause)
	}
	sort.Slice(causes, func(i, j int) bool { return causes[i] < causes[j] })

	var events []Event
	for _, cause := range causes {
		perHour := cfg.EventsPerHour[cause]
		if perHour <= 0 {
			continue
		}
		meanGap := float64(sim.Hour) / perHour
		t := sim.Time(in.rng.ExpFloat64() * meanGap)
		for t < cfg.Duration {
			dur := sim.Time(in.rng.ExpFloat64() * float64(cfg.MeanFaultDuration))
			if dur < 30*sim.Second {
				dur = 30 * sim.Second // sub-window faults are undetectable by design
			}
			events = append(events, Event{At: t, Duration: dur, Fault: in.randomTarget(cause)})
			t += sim.Time(in.rng.ExpFloat64() * meanGap)
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		return events[i].Fault.Cause < events[j].Fault.Cause
	})
	return events
}

// Play schedules inject/clear simulation events for the schedule and
// returns the ActiveFault handles in schedule order (handles are created
// lazily at injection time; the slice is filled as the simulation runs).
func (in *Injector) Play(events []Event) *[]*ActiveFault {
	injected := make([]*ActiveFault, 0, len(events))
	out := &injected
	for _, ev := range events {
		ev := ev
		in.c.Eng.At(ev.At, func() {
			af, err := in.Inject(ev.Fault)
			if err != nil {
				return // e.g. congestion found no crossing tuples
			}
			*out = append(*out, af)
			in.c.Eng.After(ev.Duration, func() { in.Clear(af) })
		})
	}
	return out
}
