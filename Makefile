GO ?= go

.PHONY: all build vet test race bench ci serve-smoke fed-smoke \
	soak soak-selftest bench-json bench-baseline bench-check determinism \
	scaling lint

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages (analyzer worker pool, ingest
# pipeline, tsdb, wire, the alert/API console tier, the tenant
# scheduler, and the federated control plane) get a dedicated race pass
# with repetition; everything else runs once. The streaming hub, the
# tsdb follower, and the reader-swarm chaos scenario get named extra
# repetitions: they are the new concurrency hot spots of the serving
# tier.
race:
	$(GO) test -race -count=2 ./internal/proto ./internal/analyzer ./internal/pipeline ./internal/tsdb ./internal/wire ./internal/alert ./internal/api ./internal/controller
	$(GO) test -race -count=2 ./internal/fed ./internal/qos ./internal/localizer ./internal/sim
	$(GO) test -race -count=4 -run 'TestHub|TestSSEStreamAndShutdownDrain|TestLongPollReplayAndPark' ./internal/api
	$(GO) test -race -count=4 -run 'TestFollower' ./internal/tsdb
	$(GO) test -race -count=2 -run 'TestShardedScenario|TestAPIReadersScenarioGreen' ./internal/chaos
	$(GO) test -race -timeout 30m ./...

# Boot the live daemon with the ops console and smoke-test it over real
# HTTP: /healthz and /api/incidents must both answer 200 (curl -f fails
# the target otherwise). Both listeners bind :0 — the actual addresses
# are parsed from the daemon's wire-addr=/http-addr= stdout lines, so
# parallel CI jobs never collide on a hardcoded port.
serve-smoke:
	$(GO) build -o bin/rpmesh-controller ./cmd/rpmesh-controller
	@set -e; \
	rm -f bin/smoke.log; \
	./bin/rpmesh-controller -listen 127.0.0.1:0 -serve 127.0.0.1:0 >bin/smoke.log 2>&1 & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	addr=; for i in $$(seq 1 50); do \
	  addr=$$(sed -n 's/^http-addr=//p' bin/smoke.log 2>/dev/null | head -n1); \
	  [ -n "$$addr" ] && break; \
	  kill -0 $$pid 2>/dev/null || { echo "serve-smoke: daemon died"; cat bin/smoke.log; exit 1; }; \
	  sleep 0.2; \
	done; \
	[ -n "$$addr" ] || { echo "serve-smoke: http-addr never printed"; cat bin/smoke.log; exit 1; }; \
	ok=0; for i in $$(seq 1 50); do \
	  if curl -fsS http://$$addr/healthz >/dev/null 2>&1; then ok=1; break; fi; \
	  sleep 0.2; \
	done; \
	[ $$ok -eq 1 ] || { echo "serve-smoke: /healthz never answered on $$addr"; cat bin/smoke.log; exit 1; }; \
	echo "GET /healthz"; curl -fsS http://$$addr/healthz; echo; \
	echo "GET /api/incidents"; curl -fsS http://$$addr/api/incidents; echo; \
	echo "serve-smoke: ok ($$addr)"

bench:
	$(GO) test -bench=. -benchmem ./...

# --- chaos / soak ------------------------------------------------------

# Seeded chaos scenarios against the full monitoring stack; exits
# non-zero with a minimized repro line on any invariant violation.
# -api-readers pins a 1000-strong ops-console reader fleet (long-poll +
# SSE) onto every scenario, proving the serving tier under chaos.
soak:
	$(GO) run ./cmd/rpmesh-soak -scenarios 5 -budget 100s
	$(GO) run ./cmd/rpmesh-soak -scenarios 2 -budget 120s -api-readers 1000

# Deterministic 3-node federation acceptance check: inject a fabric
# fault every node sees, assert one quorum-confirmed incident opens and
# resolves on every replica, verify bit-identical convergence.
fed-smoke:
	$(GO) run ./cmd/rpmesh-controller -fed-smoke

# Prove the invariant suite has teeth: -tags chaosbreak deliberately
# stops counting DropOldest sheds (internal/pipeline/accounting_break.go)
# and the suite MUST catch it.
soak-selftest:
	$(GO) test -tags chaosbreak ./internal/chaos -run TestBrokenAccountingIsCaught -count=1

# Localizer bake-off: Algorithm 1 vs 007 democratic voting over the
# link-fault scenario families, published into EXPERIMENTS.md's table.
bakeoff:
	$(GO) run ./cmd/rpmesh run bakeoff-localizer

# --- benchmark regression gate -----------------------------------------

# Key benchmarks, each pinned by the regression gate: analyzer window
# analysis (serial + sharded), incident folding, pipeline ingest, the
# pod-sharded simulation engine (serial vs 2/4 shards), the streaming
# hub fan-out, and the tsdb follower catch-up.
BENCH_PATTERN = ^(BenchmarkAnalyzerWindow|BenchmarkAnalyzerWindowParallel4|BenchmarkIncidentFold|BenchmarkPipelineIngest|BenchmarkEngineSharded|BenchmarkLocalizer007|BenchmarkStreamFanout|BenchmarkFollowerCatchup)$$
BENCH_PKGS    = . ./internal/analyzer ./internal/alert ./internal/localizer ./internal/api ./internal/tsdb

bench-json:
	$(GO) build -o bin/benchdiff ./cmd/benchdiff
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1s -count 3 -benchmem $(BENCH_PKGS) \
		| ./bin/benchdiff -parse > BENCH_pr.json
	@cat BENCH_pr.json

# Refresh the committed baseline (run on a quiet machine, then commit).
bench-baseline:
	$(GO) build -o bin/benchdiff ./cmd/benchdiff
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 1s -count 3 -benchmem $(BENCH_PKGS) \
		| ./bin/benchdiff -parse > BENCH_baseline.json
	@cat BENCH_baseline.json

# Fail if any gated benchmark regressed more than 25% vs the baseline.
bench-check: bench-json
	./bin/benchdiff -baseline BENCH_baseline.json -candidate BENCH_pr.json -max-regress 0.25

# --- multicore scaling ---------------------------------------------------

# Sweep BenchmarkEngineSharded across GOMAXPROCS 1/2/4 and render the
# speedup curve into SCALING.md. The shards=4 run at GOMAXPROCS=4 must
# beat the serial engine by SCALING_MIN_SPEEDUP (CI passes 1.5); the
# gate self-skips — loudly — on runners with fewer than 4 CPUs, so the
# table still renders on 1-core dev boxes. GOMAXPROCS is exported to
# benchdiff -parse as well: the stamp's gomaxprocs is the table's
# column key.
SCALING_MIN_SPEEDUP ?= 1.0

scaling:
	$(GO) build -o bin/benchdiff ./cmd/benchdiff
	@set -e; for gm in 1 2 4; do \
	  echo "scaling: GOMAXPROCS=$$gm"; \
	  GOMAXPROCS=$$gm $(GO) test -run '^$$' -bench '^BenchmarkEngineSharded$$' -benchtime 0.5s -count 3 . \
	    | GOMAXPROCS=$$gm ./bin/benchdiff -parse > BENCH_scaling_gm$$gm.json; \
	done
	./bin/benchdiff -scaling -min-speedup $(SCALING_MIN_SPEEDUP) -out SCALING.md \
		BENCH_scaling_gm1.json BENCH_scaling_gm2.json BENCH_scaling_gm4.json

# --- determinism gate --------------------------------------------------

# Golden/deterministic tests must produce identical results run-to-run
# and be independent of scheduler parallelism: twice at GOMAXPROCS=1 and
# twice at GOMAXPROCS=8.
determinism:
	GOMAXPROCS=1 $(GO) test -count=2 -run 'TestGoldenEquivalence|TestIncidentTimelineGolden|TestIncidentTimelineDeterministic' .
	GOMAXPROCS=8 $(GO) test -count=2 -run 'TestGoldenEquivalence|TestIncidentTimelineGolden|TestIncidentTimelineDeterministic' .
	GOMAXPROCS=1 $(GO) test -count=2 -run 'TestShardedGoldenEquivalence' .
	GOMAXPROCS=8 $(GO) test -count=2 -run 'TestShardedGoldenEquivalence' .
	GOMAXPROCS=1 $(GO) test -count=2 ./internal/chaos -run 'TestDeterminism|TestShardedScenario'
	GOMAXPROCS=8 $(GO) test -count=2 ./internal/chaos -run 'TestDeterminism|TestShardedScenario'
	GOMAXPROCS=1 $(GO) test -count=2 -run 'TestFedDeterminism' ./internal/fed ./internal/chaos
	GOMAXPROCS=8 $(GO) test -count=2 -run 'TestFedDeterminism' ./internal/fed ./internal/chaos
	GOMAXPROCS=1 $(GO) test -count=2 -run 'TestRecordsEncodeDeterministic|TestSketchDeterministic' ./internal/proto ./internal/tsdb
	GOMAXPROCS=8 $(GO) test -count=2 -run 'TestRecordsEncodeDeterministic|TestSketchDeterministic' ./internal/proto ./internal/tsdb
	GOMAXPROCS=1 $(GO) test -count=2 -run 'TestQoSPauseStormClassSelective|TestQoSDisabledMatchesLegacy|TestShardedTallyMatchesSerial|TestQoSFaultDeterminism' ./internal/simnet ./internal/localizer ./internal/chaos
	GOMAXPROCS=8 $(GO) test -count=2 -run 'TestQoSPauseStormClassSelective|TestQoSDisabledMatchesLegacy|TestShardedTallyMatchesSerial|TestQoSFaultDeterminism' ./internal/simnet ./internal/localizer ./internal/chaos
	GOMAXPROCS=1 $(GO) test -count=1 -run 'TestElisionEquivalence|TestPairLookaheadExtendsSoloHorizon' ./internal/sim
	GOMAXPROCS=8 $(GO) test -count=1 -run 'TestElisionEquivalence|TestPairLookaheadExtendsSoloHorizon' ./internal/sim

# --- static analysis ---------------------------------------------------

# staticcheck and govulncheck run when available (CI installs them; dev
# machines without network skip gracefully).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else echo "lint: staticcheck not installed, skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else echo "lint: govulncheck not installed, skipping"; fi

ci: build vet race
