GO ?= go

.PHONY: all build vet test race bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages (analyzer worker pool, ingest
# pipeline, tsdb, wire) get a dedicated race pass with repetition;
# everything else runs once.
race:
	$(GO) test -race -count=2 ./internal/analyzer ./internal/pipeline ./internal/tsdb ./internal/wire
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

ci: build vet race
