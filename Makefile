GO ?= go

.PHONY: all build vet test race bench ci serve-smoke

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages (analyzer worker pool, ingest
# pipeline, tsdb, wire, and the alert/API console tier) get a dedicated
# race pass with repetition; everything else runs once.
race:
	$(GO) test -race -count=2 ./internal/analyzer ./internal/pipeline ./internal/tsdb ./internal/wire ./internal/alert ./internal/api
	$(GO) test -race ./...

# Boot the live daemon with the ops console and smoke-test it over real
# HTTP: /healthz and /api/incidents must both answer 200 (curl -f fails
# the target otherwise).
SMOKE_HTTP ?= 127.0.0.1:18080
SMOKE_WIRE ?= 127.0.0.1:17201
serve-smoke:
	$(GO) build -o bin/rpmesh-controller ./cmd/rpmesh-controller
	@set -e; \
	./bin/rpmesh-controller -listen $(SMOKE_WIRE) -serve $(SMOKE_HTTP) & pid=$$!; \
	trap 'kill $$pid 2>/dev/null' EXIT; \
	ok=0; for i in $$(seq 1 50); do \
	  if curl -fsS http://$(SMOKE_HTTP)/healthz >/dev/null 2>&1; then ok=1; break; fi; \
	  sleep 0.2; \
	done; \
	[ $$ok -eq 1 ] || { echo "serve-smoke: /healthz never answered"; exit 1; }; \
	echo "GET /healthz"; curl -fsS http://$(SMOKE_HTTP)/healthz; echo; \
	echo "GET /api/incidents"; curl -fsS http://$(SMOKE_HTTP)/api/incidents; echo; \
	echo "serve-smoke: ok"

bench:
	$(GO) test -bench=. -benchmem ./...

ci: build vet race
