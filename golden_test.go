// Golden equivalence tests for the Analyzer: three seeded scenarios
// (the Fig 6 fault storm, the Fig 5 DML/SLA mix, and a Table 2 cause
// sequence) are run end to end and the full WindowReport sequence is
// digested canonically. The digests recorded in testdata/ were captured
// from the pre-refactor monolithic cascade; the staged pipeline must
// reproduce them bit-for-bit, in serial and in parallel (sharded) mode.
package rpingmesh_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"rpingmesh"
	"rpingmesh/internal/analyzer"
	"rpingmesh/internal/core"
	"rpingmesh/internal/faultgen"
	"rpingmesh/internal/qos"
	"rpingmesh/internal/service"
	"rpingmesh/internal/sim"
	"rpingmesh/internal/simnet"
	"rpingmesh/internal/topo"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/analyzer_golden.json from the current analyzer output")

// goldenNetCfg is the simnet config the golden scenarios run under. The
// zero value is the recorded baseline; TestGoldenEquivalenceQoSDisabled
// swaps in an explicit single-class QoS config to prove it changes
// nothing.
var goldenNetCfg simnet.Config

const goldenPath = "testdata/analyzer_golden.json"

// goldenScenario builds a cluster, drives a deterministic fault/workload
// mix, and returns the full retained report sequence.
type goldenScenario struct {
	name string
	run  func(t testing.TB, cfg analyzer.Config) []rpingmesh.WindowReport
}

func goldenCluster(t testing.TB, seed int64, acfg analyzer.Config) *rpingmesh.Cluster {
	t.Helper()
	tp, err := rpingmesh.BuildClos(rpingmesh.ClosConfig{
		Pods: 2, ToRsPerPod: 2, AggsPerPod: 2, Spines: 4,
		HostsPerToR: 2, RNICsPerHost: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := rpingmesh.New(core.Config{Topology: tp, Seed: seed, Analyzer: acfg, Net: goldenNetCfg})
	if err != nil {
		t.Fatal(err)
	}
	c.StartAgents()
	return c
}

// scenarioFig6Mix is a compressed slice of the Fig 6 month: a Poisson
// storm of six root causes plus CPU-starvation noise events.
func scenarioFig6Mix(t testing.TB, acfg analyzer.Config) []rpingmesh.WindowReport {
	c := goldenCluster(t, 606, acfg)
	in := rpingmesh.NewInjector(c, 61)
	c.Run(30 * sim.Second)

	horizon := 20 * sim.Minute
	sched := in.GenerateSchedule(faultgen.ScheduleConfig{
		Duration: horizon,
		EventsPerHour: map[faultgen.Cause]float64{
			faultgen.FlappingPort:       8,
			faultgen.PacketCorruption:   8,
			faultgen.RNICDown:           5,
			faultgen.PFCDeadlock:        4,
			faultgen.MissingRouteConfig: 3,
			faultgen.HostDown:           2,
		},
		MeanFaultDuration: 70 * sim.Second,
	})
	in.Play(sched)

	noiseRNG := c.Eng.SubRand("golden-noise")
	hosts := c.Topo.AllHosts()
	for tt := 2 * sim.Minute; tt < horizon; tt += sim.Time(float64(5*sim.Minute) * (0.5 + noiseRNG.Float64())) {
		h := hosts[noiseRNG.Intn(len(hosts))]
		tt := tt
		c.Eng.At(tt, func() { c.Agent(h).SetStarved(true) })
		c.Eng.At(tt+45*sim.Second, func() { c.Agent(h).SetStarved(false) })
	}

	c.Run(horizon + sim.Minute)
	return c.Analyzer.Reports()
}

// scenarioFig5Mix is the SLA-monitoring mix: an All2All job over six
// hosts with checkpoint phases, two in-service drop events, and one
// persistently dropping RNIC outside the service network.
func scenarioFig5Mix(t testing.TB, acfg analyzer.Config) []rpingmesh.WindowReport {
	c := goldenCluster(t, 505, acfg)
	hosts := c.Topo.AllHosts()
	serviceHosts := hosts[:6]
	outsideRNIC := c.Topo.Hosts[hosts[7]].RNICs[0]

	job, err := c.NewJob(service.Config{
		Pattern:            service.All2All,
		ComputeTime:        sim.Second,
		DemandGbps:         200,
		VolumePerFlowGB:    4,
		CheckpointEvery:    25,
		CheckpointDuration: 30 * sim.Second,
		StallFailAfter:     sim.Hour,
		Seed:               505,
	}, serviceHosts...)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(20 * sim.Second)
	if err := job.Start(); err != nil {
		t.Fatal(err)
	}

	var svcLink topo.LinkID = -1
	for _, path := range job.FlowPaths() {
		for _, l := range path {
			if _, ok := c.Topo.Switches[c.Topo.Links[l].From]; !ok {
				continue
			}
			if _, ok := c.Topo.Switches[c.Topo.Links[l].To]; ok {
				svcLink = l
			}
		}
	}
	in := rpingmesh.NewInjector(c, 51)
	c.Eng.After(3*sim.Minute, func() {
		af, _ := in.Inject(faultgen.Fault{Cause: faultgen.PacketCorruption, Link: svcLink, Severity: 0.08})
		c.Eng.After(sim.Minute, func() { in.Clear(af) })
	})
	c.Eng.After(7*sim.Minute, func() {
		_, _ = in.Inject(faultgen.Fault{Cause: faultgen.PacketCorruption, Dev: outsideRNIC, Severity: 0.5})
	})

	c.Run(10 * sim.Minute)
	return c.Analyzer.Reports()
}

// scenarioTable2Mix injects a sequence of distinct Table 2 causes, each
// cleared before the next lands.
func scenarioTable2Mix(t testing.TB, acfg analyzer.Config) []rpingmesh.WindowReport {
	c := goldenCluster(t, 202, acfg)
	in := rpingmesh.NewInjector(c, 21)
	c.Run(30 * sim.Second)

	seq := []faultgen.Fault{
		{Cause: faultgen.RNICDown, Dev: in.RandomRNIC()},
		{Cause: faultgen.HostDown, Host: in.RandomHost()},
		{Cause: faultgen.PacketCorruption, Link: in.RandomFabricLink(), Severity: 0.2},
		{Cause: faultgen.PFCDeadlock, Link: in.RandomFabricLink()},
		{Cause: faultgen.ACLError, Dev: in.RandomRNIC()},
		{Cause: faultgen.CPUOverload, Host: in.RandomHost()},
	}
	at := sim.Time(0)
	for _, f := range seq {
		f := f
		at += 2 * sim.Minute
		c.Eng.At(at, func() {
			af, err := in.Inject(f)
			if err != nil {
				return
			}
			c.Eng.After(90*sim.Second, func() { in.Clear(af) })
		})
	}
	c.Run(14 * sim.Minute)
	return c.Analyzer.Reports()
}

var goldenScenarios = []goldenScenario{
	{"fig6mix", scenarioFig6Mix},
	{"fig5mix", scenarioFig5Mix},
	{"table2mix", scenarioTable2Mix},
}

// digestReports canonically encodes every field of every report and
// hashes the stream. Map-typed fields are encoded in sorted key order so
// the digest depends only on report content.
func digestReports(reports []rpingmesh.WindowReport) string {
	h := sha256.New()
	for i := range reports {
		encodeReport(h, &reports[i])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func encodeReport(w io.Writer, r *rpingmesh.WindowReport) {
	fmt.Fprintf(w, "window %d %d %d\n", r.Index, r.Start, r.End)
	encodeSLA(w, "cluster", &r.Cluster)
	encodeSLA(w, "service", &r.Service)
	tors := make([]topo.DeviceID, 0, len(r.PerToR))
	for tor := range r.PerToR {
		tors = append(tors, tor)
	}
	sort.Slice(tors, func(i, j int) bool { return tors[i] < tors[j] })
	for _, tor := range tors {
		s := r.PerToR[tor]
		encodeSLA(w, "tor:"+string(tor), &s)
	}
	for _, sv := range r.SuspiciousSwitches {
		fmt.Fprintf(w, "suspicious %s %d\n", sv.Switch, sv.Votes)
	}
	fmt.Fprintf(w, "noise %d %d %d\n", r.HostDownTimeouts, r.QPNResetTimeouts, r.CPUNoiseTimeouts)
	for _, p := range r.Problems {
		fmt.Fprintf(w, "problem %v %v dev=%s host=%s link=%d links=%v svc=%v ev=%d win=%d\n",
			p.Kind, p.Priority, p.Device, p.Host, p.Link, p.Links, p.FromServiceTracing, p.Evidence, p.Window)
	}
	fmt.Fprintf(w, "perf %v %v %v\n", r.ServicePerf, r.PerfDegraded, r.NetworkInnocent)
}

func encodeSLA(w io.Writer, label string, s *analyzer.SLA) {
	fmt.Fprintf(w, "sla %s %d %d %d %d %v %v\n", label,
		s.Probes, s.RNICDrops, s.SwitchDrops, s.NoiseDrops, s.RNICDropRate, s.SwitchDropRate)
	for _, sum := range []struct {
		n string
		s any
	}{{"rtt", s.RTT}, {"respd", s.ResponderDelay}, {"probd", s.ProberDelay}} {
		fmt.Fprintf(w, "  %s %+v\n", sum.n, sum.s)
	}
}

func loadGolden(t testing.TB) map[string]string {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden digests missing (run with -update-golden): %v", err)
	}
	out := map[string]string{}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("corrupt %s: %v", goldenPath, err)
	}
	return out
}

// TestGoldenEquivalence proves the staged pipeline reproduces the
// pre-refactor cascade exactly: the serial digest of each scenario must
// match the recorded golden value.
func TestGoldenEquivalence(t *testing.T) {
	if *updateGolden {
		digests := map[string]string{}
		for _, sc := range goldenScenarios {
			digests[sc.name] = digestReports(sc.run(t, analyzer.Config{}))
			t.Logf("%s: %s", sc.name, digests[sc.name])
		}
		data, _ := json.MarshalIndent(digests, "", "  ")
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	golden := loadGolden(t)
	for _, sc := range goldenScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			got := digestReports(sc.run(t, analyzer.Config{}))
			if got != golden[sc.name] {
				t.Fatalf("serial report sequence diverged from pre-refactor golden\n got %s\nwant %s", got, golden[sc.name])
			}
		})
		t.Run(sc.name+"/parallel", func(t *testing.T) {
			got := digestReports(sc.run(t, analyzer.Config{Workers: 4}))
			if got != golden[sc.name] {
				t.Fatalf("parallel (Workers=4) report sequence diverged from serial golden\n got %s\nwant %s", got, golden[sc.name])
			}
		})
	}
}

// TestGoldenEquivalenceQoSDisabled proves the QoS threading is inert
// when disabled: running every golden scenario with an explicit
// single-class QoS config (Classes: 1 — the largest "off" configuration)
// must reproduce the recorded digests bit for bit. QoS setup draws no
// randomness and the single-class path never leaves the legacy tick, so
// any divergence here means the QoS subsystem leaked into baseline
// physics.
func TestGoldenEquivalenceQoSDisabled(t *testing.T) {
	golden := loadGolden(t)
	old := goldenNetCfg
	goldenNetCfg = simnet.Config{QoS: qos.Profile(1)}
	defer func() { goldenNetCfg = old }()
	for _, sc := range goldenScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			got := digestReports(sc.run(t, analyzer.Config{}))
			if got != golden[sc.name] {
				t.Fatalf("QoS-disabled run diverged from recorded golden\n got %s\nwant %s", got, golden[sc.name])
			}
		})
	}
}
