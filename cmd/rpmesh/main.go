// Command rpmesh runs the R-Pingmesh reproduction experiments: every
// table and figure of the paper regenerated from the simulated cluster.
//
// Usage:
//
//	rpmesh list                 # list experiment IDs
//	rpmesh run [-seed N] <id>…  # run selected experiments
//	rpmesh all  [-seed N]       # run everything in paper order
package main

import (
	"flag"
	"fmt"
	"os"

	"rpingmesh/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "list":
		for _, e := range experiments.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
	case "run", "all":
		fs := flag.NewFlagSet(os.Args[1], flag.ExitOnError)
		seed := fs.Int64("seed", 1, "simulation seed")
		_ = fs.Parse(os.Args[2:])
		ids := fs.Args()
		if os.Args[1] == "all" {
			ids = ids[:0]
			for _, e := range experiments.All() {
				ids = append(ids, e.ID)
			}
		}
		if len(ids) == 0 {
			fmt.Fprintln(os.Stderr, "rpmesh run: no experiment IDs given (try `rpmesh list`)")
			os.Exit(2)
		}
		for _, id := range ids {
			exp, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "rpmesh: unknown experiment %q (try `rpmesh list`)\n", id)
				os.Exit(2)
			}
			fmt.Println(exp.Run(*seed))
		}
	default:
		// Bare IDs run directly with the default seed.
		for _, id := range os.Args[1:] {
			exp, ok := experiments.ByID(id)
			if !ok {
				usage()
				os.Exit(2)
			}
			fmt.Println(exp.Run(1))
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  rpmesh list                 list experiments
  rpmesh run [-seed N] <id>…  run selected experiments
  rpmesh all  [-seed N]       run everything`)
}
