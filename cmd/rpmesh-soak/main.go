// Command rpmesh-soak runs seeded chaos scenarios against the full
// monitoring stack under a wall-clock budget. Each scenario shakes the
// stack (agent crashes, wire severs, pipeline floods, reader stalls,
// clock skew — optionally with faultgen network faults underneath) while
// the invariant suite audits every analysis window. Every fifth scenario
// targets the federated control plane instead: node partitions,
// coordinator kills mid-window and vote delays against a 3-node quorum,
// audited by the federation invariants (log agreement, vote
// conservation, liveness, single-commit). On any violation the
// driver greedily minimizes the scenario (drop chaos kinds, halve the
// horizon — per-kind PRNG streams keep surviving timelines stable) and
// exits non-zero with a copy-pasteable repro line.
//
// CI runs `make soak`; `make soak-selftest` proves the suite catches a
// deliberately broken invariant (-tags chaosbreak).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"rpingmesh/internal/chaos"
	"rpingmesh/internal/pipeline"
)

func main() {
	var (
		scenarios  = flag.Int("scenarios", 5, "number of seeded scenarios to run")
		seed       = flag.Int64("seed", 1, "base seed; scenario i uses seed+i")
		windows    = flag.Int("windows", 8, "analysis windows of chaos per scenario")
		budget     = flag.Duration("budget", 100*time.Second, "wall-clock budget incl. minimization")
		kindsFlag  = flag.String("kinds", "all", "chaos kinds (comma-separated; 'all')")
		polFlag    = flag.String("policy", "", "pipeline overload policy for every scenario (block,drop-oldest,drop-newest); default rotates")
		wire       = flag.Bool("wire", false, "force the loopback-TCP control plane on every scenario (default alternates)")
		netFaults  = flag.Bool("net-faults", false, "force faultgen network faults on every scenario (default every third)")
		shards     = flag.Int("shards", 0, "force the pod-sharded parallel engine with N shards on every scenario (default alternates serial, 2-shard and 4-shard)")
		shardEpoch = flag.Int("shard-epoch", 0, "force the sharded engine's adaptive-epoch cap on every scenario (1 = classic lockstep, elision off; default alternates adaptive and lockstep)")
		fedNodes   = flag.Int("fed-nodes", 0, "force a federated deployment with N nodes on every scenario (default: every fifth scenario runs 3-node)")
		qosClasses = flag.Int("qos-classes", 0, "force an N-class QoS fabric on every scenario (default: every fourth scenario runs 4-class)")
		qosFault   = flag.String("qos-fault", "", "force one QoS fault family on every QoS scenario ("+shortQoSFaults()+"; default rotates)")
		localizer  = flag.String("localizer", "", "force the switch localizer (alg1,007) on every scenario (default alternates on QoS scenarios)")
		apiReaders = flag.Int("api-readers", 0, "concurrent ops-console readers (long-poll + SSE) hammering every scenario's API (default: every second scenario runs 32)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		verbose    = flag.Bool("v", false, "per-scenario detail")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		// fail() exits via os.Exit, which skips defers — flushProfiles
		// runs on both the green and the violation path.
		prev := flushProfiles
		flushProfiles = func() {
			pprof.StopCPUProfile()
			f.Close()
			prev()
		}
	}
	if *memProfile != "" {
		prev := flushProfiles
		path := *memProfile
		flushProfiles = func() {
			writeHeapProfile(path)
			prev()
		}
	}
	defer flushProfiles()

	kinds, err := chaos.ParseKinds(*kindsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var fixedPolicy pipeline.Policy
	if *polFlag != "" {
		fixedPolicy, err = chaos.ParsePolicy(*polFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	parsedQoSFault, err := chaos.ParseQoSFault(*qosFault)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *localizer != "" && *localizer != "alg1" && *localizer != "007" {
		fmt.Fprintf(os.Stderr, "unknown localizer %q (want alg1,007)\n", *localizer)
		os.Exit(2)
	}
	// Flags the user pinned apply to every scenario; the rest rotate so a
	// default run covers all three overload policies and both transports.
	pinned := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { pinned[f.Name] = true })

	deadline := time.Now().Add(*budget)
	start := time.Now()
	ran := 0
	for i := 0; i < *scenarios; i++ {
		if time.Now().After(deadline) {
			fmt.Printf("budget exhausted after %d/%d scenarios (%.1fs)\n",
				ran, *scenarios, time.Since(start).Seconds())
			break
		}
		sc := chaos.Scenario{
			Seed:    *seed + int64(i),
			Windows: *windows,
			Kinds:   kinds,
			// Rotation: i%3 walks block → drop-oldest → drop-newest, so
			// scenario 1 exercises drop-oldest (what the chaosbreak
			// selftest sabotages) even in a two-scenario run.
			Policy:        pipeline.Policy(i % 3),
			Wire:          i%2 == 1,
			NetworkFaults: i%3 == 2,
		}
		// Odd scenarios run the pod-sharded parallel engine so the soak
		// continuously exercises cross-shard scheduling under chaos,
		// alternating 2- and 4-shard fabrics and alternating the adaptive
		// epoch/elision machinery against classic lockstep — both
		// coordination schedules must produce identical physics.
		if i%2 == 1 {
			sc.Shards = 2 + 2*((i/2)%2)
			// Period 3 against the shard count's period 2, so every
			// (shards, epoch) combination appears in a long run.
			if (i/2)%3 == 1 {
				sc.ShardEpoch = 1
			}
		}
		// Every fifth scenario runs the federated control plane, so a
		// default run always includes node partitions, coordinator kills
		// mid-window, and vote delays against a 3-node quorum.
		if i%5 == 3 {
			sc.FedNodes = 3
		}
		// Every fourth scenario runs a 4-class lossless fabric with one
		// QoS fault family (rotating through pfc-storm, dscp-mismap,
		// cnp-starve, incast) and alternates the switch localizer, so PFC
		// pause propagation and 007 voting soak continuously.
		if i%4 == 2 {
			faults := chaos.QoSFaultKinds()
			sc.QoSClasses = 4
			sc.QoSFault = faults[(i/4)%len(faults)]
			if (i/4)%2 == 1 {
				sc.Localizer = "007"
			}
		}
		if pinned["policy"] {
			sc.Policy = fixedPolicy
		}
		if pinned["wire"] {
			sc.Wire = *wire
		}
		if pinned["net-faults"] {
			sc.NetworkFaults = *netFaults
		}
		if pinned["shards"] {
			sc.Shards = *shards
		}
		if pinned["shard-epoch"] {
			sc.ShardEpoch = *shardEpoch
		}
		if pinned["fed-nodes"] {
			sc.FedNodes = *fedNodes
		}
		if pinned["qos-classes"] {
			sc.QoSClasses = *qosClasses
		}
		if pinned["qos-fault"] {
			sc.QoSFault = parsedQoSFault
			if sc.QoSClasses <= 1 {
				sc.QoSClasses = 4
			}
		}
		if pinned["localizer"] {
			sc.Localizer = *localizer
		}
		// Every second scenario runs a reader fleet against the console so
		// the streaming tier's shutdown-drain and shed accounting soak
		// continuously; -api-readers pins the fleet size for every run.
		if i%2 == 0 {
			sc.APIReaders = 32
		}
		if pinned["api-readers"] {
			sc.APIReaders = *apiReaders
		}

		res, err := chaos.Run(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scenario %d (seed %d): harness error: %v\n", i, sc.Seed, err)
			os.Exit(2)
		}
		ran++
		status := "ok"
		if res.Failed() {
			status = fmt.Sprintf("FAIL (%d violations)", len(res.Violations))
		}
		qosNote := ""
		if sc.QoSClasses > 1 {
			qosNote = fmt.Sprintf(" qos=%d/%s", sc.QoSClasses, sc.QoSFault)
			if sc.Localizer != "" {
				qosNote += "/" + sc.Localizer
			}
		}
		epochNote := ""
		if sc.Shards > 1 && sc.ShardEpoch > 0 {
			epochNote = fmt.Sprintf("/epoch=%d", sc.ShardEpoch)
		}
		if sc.APIReaders > 0 {
			qosNote += fmt.Sprintf(" readers=%d", sc.APIReaders)
		}
		fmt.Printf("scenario %d seed=%d policy=%s wire=%v net-faults=%v shards=%d%s fed=%d%s events=%d windows=%d drops=%d shed=%d waits=%d: %s\n",
			i, sc.Seed, sc.Policy, sc.Wire, sc.NetworkFaults, sc.Shards, epochNote, sc.FedNodes, qosNote,
			len(res.Events), res.Windows,
			res.Pipeline.Dropped(), res.Pipeline.ResultsShed, res.Pipeline.BlockWaits, status)
		if len(res.LeaderHistory) > 0 && *verbose {
			fmt.Printf("  leaders: %s\n", leaderLine(res.LeaderHistory))
		}
		if *verbose {
			fmt.Printf("  fingerprint: %s\n", res.Fingerprint)
		}
		if res.Failed() {
			fail(res, deadline)
		}
	}
	fmt.Printf("soak: %d scenarios green in %.1fs\n", ran, time.Since(start).Seconds())
}

// shortQoSFaults renders the QoS fault family names for flag help.
func shortQoSFaults() string { return strings.Join(chaos.QoSFaultKinds(), ",") }

// leaderLine renders a federated run's per-window committing leader
// (-1: no commit that window).
func leaderLine(hist []int) string {
	out := make([]byte, 0, 2*len(hist))
	for i, l := range hist {
		if i > 0 {
			out = append(out, ',')
		}
		out = fmt.Appendf(out, "%d", l)
	}
	return string(out)
}

// flushProfiles stops/writes any requested pprof profiles; main chains
// the real work in. A package var because fail() leaves via os.Exit.
var flushProfiles = func() {}

// writeHeapProfile snapshots the heap to path (after a GC so the
// profile reflects live objects, not garbage awaiting collection).
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
	}
}

// fail reports the violations, minimizes the scenario within the
// remaining budget, prints the repro line, and exits non-zero.
func fail(res *chaos.Result, deadline time.Time) {
	for _, v := range res.Violations {
		fmt.Printf("  %s\n", v)
	}
	min := minimize(res.Scenario, deadline)
	fmt.Printf("\nminimized repro:\n  rpmesh-soak %s\n", min.ReproArgs())
	if len(res.LeaderHistory) > 0 {
		// Which node committed each window: the first thing a federation
		// failure post-mortem wants next to the repro.
		fmt.Printf("  elected-leader history: %s\n", leaderLine(res.LeaderHistory))
	}
	flushProfiles()
	os.Exit(1)
}

// stillFails re-runs a candidate scenario and reports whether any
// invariant still trips. Harness errors count as not-reproducing so
// minimization never walks into a configuration that cannot run.
func stillFails(sc chaos.Scenario) bool {
	res, err := chaos.Run(sc)
	return err == nil && res.Failed()
}

// minimize greedily shrinks a failing scenario: first drop chaos kinds
// one at a time (per-kind PRNG streams guarantee the surviving kinds'
// timelines are unchanged, so removals compose), then halve the horizon
// while the failure persists. Bounded by the soak budget's deadline.
func minimize(sc chaos.Scenario, deadline time.Time) chaos.Scenario {
	best := sc
	kinds := append([]chaos.Kind(nil), best.Kinds...)
	for _, drop := range kinds {
		if time.Now().After(deadline) {
			return best
		}
		var keep []chaos.Kind
		for _, k := range best.Kinds {
			if k != drop {
				keep = append(keep, k)
			}
		}
		if len(keep) == 0 {
			continue
		}
		cand := best
		cand.Kinds = keep
		if stillFails(cand) {
			best = cand
		}
	}
	for best.Windows > 2 && !time.Now().After(deadline) {
		cand := best
		cand.Windows = best.Windows / 2
		if !stillFails(cand) {
			break
		}
		best = cand
	}
	return best
}
