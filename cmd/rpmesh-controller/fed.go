// Federated deployment modes of rpmesh-controller.
//
// -fed-nodes N boots an in-process federated control plane (internal/fed):
// N peer controller/analyzer stacks over one simulated fabric, each
// probing its own pod shard, coordinating per analysis window — leader
// election from heartbeats, quorum incident confirmation, IncidentSync
// reconciliation. The ops console (-serve) fronts node 0 and exposes the
// federation through /api/peers and the quorum-aware /healthz.
//
// -fed-smoke runs the deterministic 3-node acceptance check: inject a
// fabric fault every vantage point can see, assert exactly one
// quorum-confirmed incident opens on every replica, clear the fault,
// assert it resolves, and verify all replicas converged bit-identically.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rpingmesh/internal/api"
	"rpingmesh/internal/core"
	"rpingmesh/internal/faultgen"
	"rpingmesh/internal/fed"
	"rpingmesh/internal/qos"
	"rpingmesh/internal/topo"
)

type fedOptions struct {
	nodes      int
	quorum     int
	seed       int64
	windows    int           // 0: run until interrupted
	window     time.Duration // wall-clock pacing per coordination step
	serve      string        // ops console address ("" disables)
	localizer  string        // "", "alg1" or "007"
	qosClasses int           // > 1: per-priority fabric on every node
}

// runFedMode drives a live in-process federation: one coordination step
// per -analyzer-window of wall time, console over node 0. Returns the
// process exit code.
func runFedMode(o fedOptions) int {
	d, err := fed.NewDeploy(fed.DeployConfig{
		Fed:  fed.Config{Nodes: o.nodes, Quorum: o.quorum, Secret: uint64(o.seed) * 2654435761},
		Seed: o.seed,
		Configure: func(_ int, cfg *core.Config) {
			cfg.Localizer = o.localizer
			if o.qosClasses > 1 {
				cfg.Net.QoS = qos.Profile(o.qosClasses)
			}
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fed: %v\n", err)
		return 1
	}
	n0 := d.Node(0)

	var console *api.Server
	if o.serve != "" {
		console = api.New(api.Backend{
			Windows: n0.Cluster.Analyzer, TSDB: n0.Cluster.TSDB,
			Pipeline: n0.Cluster.Ingest, Alerts: n0.Replica().Engine(),
			Peers: n0,
		}, api.Config{Addr: o.serve})
		if err := console.Start(); err != nil {
			fmt.Fprintf(os.Stderr, "ops console: %v\n", err)
			return 1
		}
		fmt.Printf("ops console serving http://%s\n", console.Addr())
		fmt.Printf("http-addr=%s\n", console.Addr())
	}
	fmt.Printf("rpmesh-controller federation: %d nodes, quorum %d, seed %d, %s windows\n",
		d.Nodes(), o.quorum, o.seed, o.window)

	tick := time.NewTicker(o.window)
	defer tick.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	done := func() int {
		if console != nil {
			if err := console.Shutdown(context.Background()); err != nil {
				fmt.Printf("ops console shutdown: %v\n", err)
			}
		}
		fmt.Printf("leader history: %s\n", leaderHistoryString(d.LeaderHistory()))
		return 0
	}
	for {
		select {
		case <-tick.C:
			info := d.Step()
			st := n0.FedStatus()
			fmt.Printf("fed: window=%d leader=%d applied_seq=%d quorum_ok=%v incidents=%d\n",
				info.Window, info.Leader, n0.Replica().AppliedSeq(), st.QuorumOK,
				len(n0.Replica().Timeline()))
			for _, e := range info.Errors {
				fmt.Printf("  fed error: %s\n", e)
			}
			if o.windows > 0 && d.Steps() >= o.windows {
				return done()
			}
		case <-sig:
			fmt.Println("shutting down")
			return done()
		}
	}
}

// runFedSmoke is the `make fed-smoke` payload. Deterministic end to end:
// fixed seed, lockstep advance, no wall-clock dependence.
func runFedSmoke() int {
	const (
		seed   = 1
		secret = 0xfed5
	)
	d, err := fed.NewDeploy(fed.DeployConfig{
		Fed:  fed.Config{Nodes: 3, Quorum: 2, Secret: secret},
		Seed: seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "fed-smoke: deploy: %v\n", err)
		return 1
	}
	ok := true
	fail := func(format string, args ...any) {
		ok = false
		fmt.Fprintf(os.Stderr, "fed-smoke: FAIL: "+format+"\n", args...)
	}
	d.OnStep(func(info fed.StepInfo) {
		for _, e := range info.Errors {
			fail("step w%d: %s", info.Window, e)
		}
		if info.DoubleCommit {
			fail("step w%d: double commit", info.Window)
		}
		if a := d.Accounting(); !a.Balanced() {
			fail("step w%d: vote ledger unbalanced: %s", info.Window, a)
		}
	})

	// Two clean windows, then corrupt the lowest agg→spine link on every
	// node's replica of the fabric — a fault all three vantage points see.
	d.Run(2)
	link := lowestSpineLink(d.Node(0).Cluster.Topo)
	if link < 0 {
		fail("no agg→spine link in topology")
		return 1
	}
	var injectors []*faultgen.Injector
	for i := 0; i < d.Nodes(); i++ {
		inj := faultgen.NewInjector(d.Node(i).Cluster, 42)
		if _, err := inj.Inject(faultgen.Fault{
			Cause: faultgen.PacketCorruption, Link: link, Severity: 0.5,
		}); err != nil {
			fail("inject node %d: %v", i, err)
			return 1
		}
		injectors = append(injectors, inj)
	}
	d.Run(6)

	key := fmt.Sprintf("link:%d/switch-link", int(link))
	opens := countEvents(d.Node(0).Replica().Timeline(), "open", key)
	if opens != 1 {
		fail("after fault: %d quorum incident opens for %s, want exactly 1; timeline:\n%s",
			opens, key, strings.Join(d.Node(0).Replica().Timeline(), "\n"))
	}

	// Clear the fault; quorum is lost and hysteresis resolves the incident.
	for _, inj := range injectors {
		inj.ClearAll()
	}
	d.Run(10)
	if n := countEvents(d.Node(0).Replica().Timeline(), "resolve", key); n != 1 {
		fail("after clear: %d resolves for %s, want exactly 1; timeline:\n%s",
			n, key, strings.Join(d.Node(0).Replica().Timeline(), "\n"))
	}

	// Every replica must hold the identical log and incident timeline.
	r0 := d.Node(0).Replica()
	for i := 1; i < d.Nodes(); i++ {
		r := d.Node(i).Replica()
		if r.AppliedSeq() != r0.AppliedSeq() || r.Digest() != r0.Digest() ||
			r.TimelineDigest() != r0.TimelineDigest() {
			fail("replica %d diverged: seq=%d digest=%x tl=%x vs node 0 seq=%d digest=%x tl=%x",
				i, r.AppliedSeq(), r.Digest(), r.TimelineDigest(),
				r0.AppliedSeq(), r0.Digest(), r0.TimelineDigest())
		}
	}
	for i := 0; i < d.Nodes(); i++ {
		if err := d.Node(i).Replica().Engine().CheckInvariants(); err != nil {
			fail("replica %d alert invariants: %v", i, err)
		}
	}

	if !ok {
		return 1
	}
	fmt.Printf("fed-smoke: ok — 3 nodes, quorum 2, %d windows, incident %s opened and resolved on every replica\n",
		d.Steps(), key)
	fmt.Printf("fed-smoke: leader history: %s\n", leaderHistoryString(d.LeaderHistory()))
	return 0
}

// lowestSpineLink finds the lowest-ID agg→spine link: the fabric link
// inter-ToR probes from every pod traverse.
func lowestSpineLink(tp *topo.Topology) topo.LinkID {
	best := topo.LinkID(-1)
	for _, l := range tp.Links {
		from, to := tp.Switches[l.From], tp.Switches[l.To]
		if from == nil || to == nil {
			continue
		}
		if from.Tier == topo.TierAgg && to.Tier == topo.TierSpine {
			if best < 0 || l.ID < best {
				best = l.ID
			}
		}
	}
	return best
}

// countEvents counts timeline lines carrying both the event type and the
// incident key.
func countEvents(timeline []string, event, key string) int {
	n := 0
	for _, l := range timeline {
		if strings.Contains(l, " "+event+" ") && strings.Contains(l, key) {
			n++
		}
	}
	return n
}

func leaderHistoryString(hist []int) string {
	parts := make([]string, len(hist))
	for i, l := range hist {
		parts[i] = fmt.Sprintf("%d", l)
	}
	return strings.Join(parts, ",")
}
