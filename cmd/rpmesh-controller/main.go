// Command rpmesh-controller runs a standalone R-Pingmesh Controller plus
// the telemetry ingest tier (pipeline + time-series store — the
// Kafka/Flink/DB slice of the paper's Figure 3) over TCP. Agents connect
// with internal/wire.Client, register their RNIC communication info, pull
// pinglists, and push probe-result batches; batches flow through a
// sharded bounded pipeline into an aggregator that publishes per-interval
// RTT and ingest metrics into a bounded tsdb.
//
// Behind the ingest tier runs the full Analyzer on its attribution
// pipeline: every -analyzer-window it classifies the window's probes,
// detects anomalous RNICs, votes on switch links, and aggregates SLAs,
// sharding the data-parallel stages across -workers goroutines (the
// multicore win the deterministic simulations deliberately forgo).
//
// Usage:
//
// With -serve, the daemon additionally exposes the ops-console HTTP API
// (internal/api): incidents folded by the alert engine from every
// analyzer window, window reports by sequence number, tsdb range and
// quantile queries, and pipeline self-metrics.
//
// Usage:
//
//	rpmesh-controller [-listen 127.0.0.1:7201] [-partitions 4 -capacity 256 -policy block]
//	                  [-pods 2 -tors 2 -aggs 2 -spines 4 -hosts 2 -rnics 2]
//	                  [-workers N -analyzer-window 20s] [-serve :8080]
//	                  [-tenants gold:4,silver:2,bronze:1 -tenant-pps 500]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"
	"time"

	"rpingmesh/internal/alert"
	"rpingmesh/internal/analyzer"
	"rpingmesh/internal/api"
	"rpingmesh/internal/controller"
	"rpingmesh/internal/metrics"
	"rpingmesh/internal/pipeline"
	"rpingmesh/internal/proto"
	"rpingmesh/internal/sim"
	"rpingmesh/internal/topo"
	"rpingmesh/internal/tsdb"
	"rpingmesh/internal/wire"
)

// aggregator consumes pipeline deliveries and folds them into both a
// running tally and per-interval RTT distributions, published into the
// tsdb on every stats tick — the standalone daemon's miniature Analyzer.
type aggregator struct {
	db *tsdb.DB

	mu       sync.Mutex
	batches  uint64
	results  uint64
	timeouts uint64
	rtt      *metrics.Distribution // reset every publish interval
}

func newAggregator(db *tsdb.DB) *aggregator {
	return &aggregator{db: db, rtt: metrics.NewDistribution()}
}

func (a *aggregator) Upload(b proto.UploadBatch) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.batches++
	a.results += uint64(len(b.Results))
	for _, r := range b.Results {
		if r.Timeout {
			a.timeouts++
			continue
		}
		a.rtt.Add(float64(r.NetworkRTT) / float64(sim.Microsecond))
	}
}

// publish seals the current interval into the tsdb and returns a one-line
// summary. t is the wall clock in ns (the daemon's sim.Time axis).
func (a *aggregator) publish(t sim.Time) string {
	a.mu.Lock()
	s := a.rtt.Summarize()
	batches, results, timeouts := a.batches, a.results, a.timeouts
	a.rtt = metrics.NewDistribution()
	a.mu.Unlock()

	a.db.Append("ingest.batches", t, float64(batches))
	a.db.Append("ingest.results", t, float64(results))
	a.db.Append("ingest.timeouts", t, float64(timeouts))
	if s.Count > 0 {
		a.db.Append("rtt.p50_us", t, s.P50)
		a.db.Append("rtt.p99_us", t, s.P99)
	}
	return fmt.Sprintf("batches=%d results=%d timeouts=%d rtt_us[%s]",
		batches, results, timeouts, s)
}

// analyzerTier adapts wall-clock TCP ingest to the Analyzer: each batch
// is re-stamped with its receive time so host-down classification runs
// on the daemon's clock axis even when agent clocks skew.
type analyzerTier struct{ an *analyzer.Analyzer }

func (t analyzerTier) Upload(b proto.UploadBatch) {
	b.Sent = sim.Time(time.Now().UnixNano())
	t.an.Upload(b)
}

func parsePolicy(s string) (pipeline.Policy, error) {
	switch s {
	case "block":
		return pipeline.Block, nil
	case "drop-oldest":
		return pipeline.DropOldest, nil
	case "drop-newest":
		return pipeline.DropNewest, nil
	}
	return 0, fmt.Errorf("unknown policy %q (want block, drop-oldest or drop-newest)", s)
}

func main() {
	listen := flag.String("listen", "127.0.0.1:7201", "TCP listen address")
	pods := flag.Int("pods", 2, "CLOS pods")
	tors := flag.Int("tors", 2, "ToRs per pod")
	aggs := flag.Int("aggs", 2, "Aggs per pod")
	spines := flag.Int("spines", 4, "spines")
	hosts := flag.Int("hosts", 2, "hosts per ToR")
	rnics := flag.Int("rnics", 2, "RNICs per host")
	partitions := flag.Int("partitions", 4, "ingest pipeline partitions")
	capacity := flag.Int("capacity", 256, "per-partition queue capacity (batches)")
	policy := flag.String("policy", "block", "overload policy: block, drop-oldest, drop-newest")
	statsEvery := flag.Duration("stats", 10*time.Second, "self-metrics print interval")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "analyzer shard workers per window (1 = serial)")
	anWindow := flag.Duration("analyzer-window", 20*time.Second, "analyzer attribution window")
	localizer := flag.String("localizer", "", "switch localizer: alg1 (Algorithm 1 whole-vote, default) or 007 (democratic per-flow voting)")
	qosClasses := flag.Int("qos-classes", 0, "with -fed-nodes: run each node's simulated fabric with N per-priority traffic classes (0/1: single-class)")
	serve := flag.String("serve", "", "ops-console HTTP listen address (e.g. :8080); empty disables")
	tenants := flag.String("tenants", "", "probe tenants as name:weight[:maxpps],... (e.g. gold:4,silver:2,bronze:1); empty disables tenant scheduling")
	tenantPPS := flag.Float64("tenant-pps", 0, "total probe capacity (packets/s) shared by -tenants via deficit round robin; 0 = uncontended")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (stopped on shutdown)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on shutdown")
	fedNodes := flag.Int("fed-nodes", 0, "run an in-process federated control plane with N nodes (quorum incident confirmation); 0 disables")
	fedQuorum := flag.Int("fed-quorum", 0, "votes needed to confirm an incident (0: majority of -fed-nodes)")
	fedSeed := flag.Int64("fed-seed", 1, "seed for the federated deployment's simulated fabric")
	fedWindows := flag.Int("fed-windows", 0, "with -fed-nodes, stop after N coordination windows (0: run until interrupted)")
	fedSmoke := flag.Bool("fed-smoke", false, "run the deterministic 3-node federation smoke check and exit")
	flag.Parse()

	switch *localizer {
	case "", analyzer.LocalizerAlg1, analyzer.Localizer007:
	default:
		log.Fatalf("unknown -localizer %q (want alg1 or 007)", *localizer)
	}

	// Federation modes run their own loop; dispatch before the daemon path.
	if *fedSmoke {
		os.Exit(runFedSmoke())
	}
	if *fedNodes > 1 {
		os.Exit(runFedMode(fedOptions{
			nodes: *fedNodes, quorum: *fedQuorum, seed: *fedSeed,
			windows: *fedWindows, window: *anWindow, serve: *serve,
			localizer: *localizer, qosClasses: *qosClasses,
		}))
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		// LIFO: stop (which flushes) must run before the file closes.
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Print(err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Print(err)
			}
		}()
	}

	pol, err := parsePolicy(*policy)
	if err != nil {
		log.Fatal(err)
	}
	tp, err := topo.BuildClos(topo.ClosConfig{
		Pods: *pods, ToRsPerPod: *tors, AggsPerPod: *aggs, Spines: *spines,
		HostsPerToR: *hosts, RNICsPerHost: *rnics,
	})
	if err != nil {
		log.Fatalf("topology: %v", err)
	}
	tenantCfgs, err := controller.ParseTenants(*tenants)
	if err != nil {
		log.Fatalf("-tenants: %v", err)
	}
	ctrl := controller.New(sim.New(time.Now().UnixNano()), tp, controller.Config{
		Tenants: tenantCfgs, TenantCapacityPPS: *tenantPPS,
	})

	// The full Analyzer rides its own engine, advanced to the wall clock
	// before each window so Tick sees real time. TCP receivers feed it
	// concurrently; the sharded stages use the worker pool.
	aeng := sim.New(0)
	aeng.RunUntil(sim.Time(time.Now().UnixNano()))
	an := analyzer.New(aeng, tp, ctrl, analyzer.Config{
		Window:    sim.Time(*anWindow),
		Workers:   *workers,
		Localizer: *localizer,
	})

	// The ingest tier: wire.Server → pipeline (concurrent mode, one
	// consumer per partition) → {aggregator, Analyzer} → tsdb. The primary
	// journals its mutations so the console's read follower can catch up
	// by delta; every API range/quantile read is served from the replica,
	// never contending with the ingest path's write lock.
	db := tsdb.Open(tsdb.Config{JournalCapacity: 1 << 16})
	an.SetMetricSink(db)
	follower := tsdb.NewFollower(db)
	agg := newAggregator(db)
	pipe := pipeline.New(pipeline.Config{
		Partitions: *partitions, Capacity: *capacity, Policy: pol,
	}, agg, analyzerTier{an})
	// The store's sketch tier consumes delivered record batches directly
	// (per-host ingest.rtt.* quantile ladders + per-device tallies).
	pipe.SubscribeRecords(db)
	pipe.Start()
	defer pipe.Stop()

	// The console/alarm tier: every window report folds into the incident
	// engine; with -serve the HTTP API fronts the whole deployment. The
	// daemon has no watchdog (counters live in the simulated fabric), so
	// /api/diagnose stays unwired and answers 501.
	alerts := alert.NewEngine(alert.Config{})
	alerts.AddNotifier(alert.LogNotifier{Logger: log.New(os.Stdout, "alert: ", 0)})

	srv, err := wire.Listen(*listen, ctrl, pipe)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer srv.Close()

	var console *api.Server
	if *serve != "" {
		backend := api.Backend{
			Windows: an, TSDB: follower, Pipeline: pipe, Alerts: alerts,
			// Sheddable endpoints answer 429 + Retry-After while the ingest
			// pipeline backs up or the read replica falls too far behind.
			Admission: &api.Admission{Pipeline: pipe, Follower: follower},
		}
		if ctrl.Tenants() {
			backend.Tenants = ctrl
		}
		console = api.New(backend, api.Config{Addr: *serve})
		// Incident transitions stream at /api/stream/incidents as they
		// happen (window reports are published from the analyzer loop).
		alerts.AddNotifier(console.AlertNotifier())
		if err := console.Start(); err != nil {
			log.Fatalf("ops console: %v", err)
		}
		fmt.Printf("ops console serving http://%s\n", console.Addr())
		// Machine-parseable form: tooling (make serve-smoke) binds :0 and
		// reads the actual address from here instead of guessing ports.
		fmt.Printf("http-addr=%s\n", console.Addr())
	}
	fmt.Printf("rpmesh-controller serving %s (%d RNICs across %d hosts; ingest: %d partitions × cap %d, policy %s; analyzer: %d workers, %s windows)\n",
		srv.Addr(), len(tp.RNICs), len(tp.Hosts), *partitions, *capacity, pol, *workers, *anWindow)
	fmt.Printf("wire-addr=%s\n", srv.Addr())

	tick := time.NewTicker(*statsEvery)
	defer tick.Stop()
	anTick := time.NewTicker(*anWindow)
	defer anTick.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-anTick.C:
			// One goroutine (this loop) drives Tick; uploads keep landing
			// concurrently from the pipeline consumers.
			aeng.RunUntil(sim.Time(time.Now().UnixNano()))
			rep := an.Tick()
			alerts.Observe(rep)
			follower.CatchUp()
			if console != nil {
				console.PublishWindow(rep)
			}
			fmt.Printf("analyzer: window=%d probes=%d drops[rnic=%.4f switch=%.4f] problems=%d suspicious_switches=%d\n",
				rep.Index, rep.Cluster.Probes, rep.Cluster.RNICDropRate,
				rep.Cluster.SwitchDropRate, len(rep.Problems), len(rep.SuspiciousSwitches))
			for _, p := range rep.Problems {
				fmt.Printf("  problem: %v %v dev=%s host=%s link=%d evidence=%d\n",
					p.Kind, p.Priority, p.Device, p.Host, p.Link, p.Evidence)
			}
		case <-tick.C:
			now := sim.Time(time.Now().UnixNano())
			line := agg.publish(now)
			follower.CatchUp()
			st := pipe.Stats()
			fmt.Printf("registered=%d %s\n", ctrl.Registered(), line)
			if ctrl.Tenants() {
				for _, g := range ctrl.TenantGrants() {
					fmt.Printf("  tenant %s: weight=%d hosts=%d demand=%.1fpps granted=%.1fpps share=%.2f\n",
						g.Name, g.Weight, g.Hosts, g.DemandPPS, g.GrantedPPS, g.Share)
				}
			}
			fmt.Printf("  pipeline: %s\n", st)
			for i, ps := range st.Partitions {
				if ps.Enqueued == 0 && ps.Depth == 0 {
					continue
				}
				fmt.Printf("  part[%d]: depth=%d max_depth=%d in=%d out=%d dropped=%d\n",
					i, ps.Depth, ps.MaxDepth, ps.Enqueued, ps.Dequeued,
					ps.DroppedOldest+ps.DroppedNewest)
			}
			if p50, ok := db.Latest("rtt.p50_us"); ok {
				q99, _ := db.Quantile("rtt.p99_us", now-sim.Time(10*time.Minute), now, 0.5)
				fmt.Printf("  tsdb: rtt.p50=%.1fus (latest) rtt.p99=%.1fus (10m median) series=%d\n",
					p50.V, q99, len(db.Series()))
			}
		case <-sig:
			fmt.Println("shutting down")
			if console != nil {
				if err := console.Shutdown(context.Background()); err != nil {
					fmt.Printf("ops console shutdown: %v\n", err)
				}
			}
			pipe.Stop()
			final := pipe.Stats()
			fmt.Printf("final pipeline: %s\n", final)
			return
		}
	}
}
