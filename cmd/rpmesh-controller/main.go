// Command rpmesh-controller runs a standalone R-Pingmesh Controller (and
// an upload sink standing in for the Analyzer ingest tier) over TCP — the
// management-network deployment of the paper's Figure 3. Agents connect
// with internal/wire.Client, register their RNIC communication info, pull
// pinglists, and push probe-result batches.
//
// Usage:
//
//	rpmesh-controller [-listen 127.0.0.1:7201] [-pods 2 -tors 2 -aggs 2 -spines 4 -hosts 2 -rnics 2]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"rpingmesh/internal/controller"
	"rpingmesh/internal/proto"
	"rpingmesh/internal/sim"
	"rpingmesh/internal/topo"
	"rpingmesh/internal/wire"
)

// countingSink tallies uploads; the real Analyzer would consume them per
// 20s window.
type countingSink struct {
	batches  atomic.Int64
	results  atomic.Int64
	timeouts atomic.Int64
}

func (s *countingSink) Upload(b proto.UploadBatch) {
	s.batches.Add(1)
	s.results.Add(int64(len(b.Results)))
	for _, r := range b.Results {
		if r.Timeout {
			s.timeouts.Add(1)
		}
	}
}

func main() {
	listen := flag.String("listen", "127.0.0.1:7201", "TCP listen address")
	pods := flag.Int("pods", 2, "CLOS pods")
	tors := flag.Int("tors", 2, "ToRs per pod")
	aggs := flag.Int("aggs", 2, "Aggs per pod")
	spines := flag.Int("spines", 4, "spines")
	hosts := flag.Int("hosts", 2, "hosts per ToR")
	rnics := flag.Int("rnics", 2, "RNICs per host")
	flag.Parse()

	tp, err := topo.BuildClos(topo.ClosConfig{
		Pods: *pods, ToRsPerPod: *tors, AggsPerPod: *aggs, Spines: *spines,
		HostsPerToR: *hosts, RNICsPerHost: *rnics,
	})
	if err != nil {
		log.Fatalf("topology: %v", err)
	}
	ctrl := controller.New(sim.New(time.Now().UnixNano()), tp, controller.Config{})
	sink := &countingSink{}

	srv, err := wire.Listen(*listen, ctrl, sink)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer srv.Close()
	fmt.Printf("rpmesh-controller serving %s (%d RNICs across %d hosts)\n",
		srv.Addr(), len(tp.RNICs), len(tp.Hosts))

	tick := time.NewTicker(10 * time.Second)
	defer tick.Stop()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	for {
		select {
		case <-tick.C:
			fmt.Printf("registered=%d batches=%d results=%d timeouts=%d\n",
				ctrl.Registered(), sink.batches.Load(), sink.results.Load(), sink.timeouts.Load())
		case <-sig:
			fmt.Println("shutting down")
			return
		}
	}
}
