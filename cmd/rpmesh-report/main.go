// Command rpmesh-report regenerates every experiment in paper order and
// emits a Markdown report — the data behind EXPERIMENTS.md.
//
// Usage:
//
//	rpmesh-report [-seed N] > report.md
package main

import (
	"flag"
	"fmt"
	"sort"
	"time"

	"rpingmesh/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	fmt.Printf("# R-Pingmesh reproduction report (seed %d)\n", *seed)
	start := time.Now()
	for _, e := range experiments.All() {
		t0 := time.Now()
		rep := e.Run(*seed)
		fmt.Printf("\n## %s — %s\n\n", rep.ID, e.Title)
		fmt.Println("```")
		for _, l := range rep.Lines {
			fmt.Println(l)
		}
		fmt.Println("```")
		keys := make([]string, 0, len(rep.Metrics))
		for k := range rep.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Println()
		fmt.Println("| metric | value |")
		fmt.Println("|---|---|")
		for _, k := range keys {
			fmt.Printf("| %s | %.4g |\n", k, rep.Metrics[k])
		}
		fmt.Printf("\n_(ran in %v)_\n", time.Since(t0).Round(time.Millisecond))
	}
	fmt.Printf("\n---\ntotal runtime %v\n", time.Since(start).Round(time.Second))
}
