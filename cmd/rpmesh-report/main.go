// Command rpmesh-report regenerates every experiment in paper order and
// emits a Markdown report — the data behind EXPERIMENTS.md. With
// -history it also runs a short deployment and answers historical range
// and quantile queries from the cluster's time-series store, showing the
// ingest tier end to end.
//
// Usage:
//
//	rpmesh-report [-seed N] [-history] [-history-only] > report.md
package main

import (
	"flag"
	"fmt"
	"sort"
	"time"

	"rpingmesh/internal/core"
	"rpingmesh/internal/experiments"
	"rpingmesh/internal/sim"
	"rpingmesh/internal/topo"
)

// historyReport runs a small cluster long enough to close several
// analyzer windows, then answers historical queries from cluster.TSDB —
// the part of the report that exercises agent → pipeline → analyzer →
// tsdb rather than in-memory experiment state.
func historyReport(seed int64, span sim.Time) {
	tp, err := topo.BuildClos(topo.ClosConfig{
		Pods: 2, ToRsPerPod: 2, AggsPerPod: 2, Spines: 4,
		HostsPerToR: 2, RNICsPerHost: 2,
	})
	if err != nil {
		panic(err)
	}
	c, err := core.NewCluster(core.Config{Topology: tp, Seed: seed})
	if err != nil {
		panic(err)
	}
	c.StartAgents()
	c.Run(span)

	us := func(ns float64) float64 { return ns / float64(sim.Microsecond) }
	fmt.Printf("\n## historical-windows — Ingest tier: historical queries from the tsdb\n\n")
	st := c.Ingest.Stats()
	fmt.Println("```")
	fmt.Printf("simulated %v; pipeline %s\n", time.Duration(span), st)
	fmt.Printf("tsdb series: %d, windows retained: %d (analyzer ticked %d)\n",
		len(c.TSDB.Series()), len(c.Analyzer.Reports()), c.Analyzer.TotalWindows())
	fmt.Println("```")

	fmt.Println()
	fmt.Println("| window end | cluster p50 (us) | cluster p99 (us) | probes |")
	fmt.Println("|---|---|---|---|")
	p50s := c.TSDB.Range("cluster.rtt.p50", 0, c.Eng.Now())
	for _, p := range p50s {
		p99, _ := c.TSDB.Quantile("cluster.rtt.p99", p.T, p.T, 0.5)
		probes, _ := c.TSDB.Quantile("cluster.probes", p.T, p.T, 0.5)
		fmt.Printf("| %v | %.1f | %.1f | %.0f |\n",
			time.Duration(p.T), us(p.V), us(p99), probes)
	}
	if q, ok := c.TSDB.Quantile("cluster.rtt.p99", 0, c.Eng.Now(), 0.5); ok {
		fmt.Printf("\nmedian of per-window p99 over the whole run: %.1f us\n", us(q))
	}
	if p, ok := c.TSDB.Latest("cluster.rtt.p50"); ok {
		fmt.Printf("latest cluster p50: %.1f us at %v\n", us(p.V), time.Duration(p.T))
	}
}

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	history := flag.Bool("history", true, "append the tsdb historical-windows section")
	historyOnly := flag.Bool("history-only", false, "emit only the tsdb historical-windows section")
	flag.Parse()

	fmt.Printf("# R-Pingmesh reproduction report (seed %d)\n", *seed)
	start := time.Now()
	if *historyOnly {
		historyReport(*seed, 2*sim.Minute)
		fmt.Printf("\n---\ntotal runtime %v\n", time.Since(start).Round(time.Second))
		return
	}
	for _, e := range experiments.All() {
		t0 := time.Now()
		rep := e.Run(*seed)
		fmt.Printf("\n## %s — %s\n\n", rep.ID, e.Title)
		fmt.Println("```")
		for _, l := range rep.Lines {
			fmt.Println(l)
		}
		fmt.Println("```")
		keys := make([]string, 0, len(rep.Metrics))
		for k := range rep.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Println()
		fmt.Println("| metric | value |")
		fmt.Println("|---|---|")
		for _, k := range keys {
			fmt.Printf("| %s | %.4g |\n", k, rep.Metrics[k])
		}
		fmt.Printf("\n_(ran in %v)_\n", time.Since(t0).Round(time.Millisecond))
	}
	if *history {
		historyReport(*seed, 2*sim.Minute)
	}
	fmt.Printf("\n---\ntotal runtime %v\n", time.Since(start).Round(time.Second))
}
