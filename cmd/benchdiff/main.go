// Command benchdiff is the benchmark regression gate.
//
// Two modes:
//
//	go test -bench ... | benchdiff -parse > BENCH_pr.json
//	    Parse `go test -bench` text from stdin into canonical JSON: per
//	    benchmark (GOMAXPROCS suffix stripped), the minimum ns/op across
//	    all -count repetitions — min, not mean, because noise on a shared
//	    CI runner only ever adds time. With -benchmem output, allocs/op
//	    is captured the same way (minimum per name).
//
//	benchdiff -baseline BENCH_baseline.json -candidate BENCH_pr.json -max-regress 0.25
//	    Exit non-zero if any baseline benchmark is missing from the
//	    candidate, slowed down by more than -max-regress, or allocates
//	    more than the baseline allows (a 0-alloc baseline admits no
//	    allocations at all — the zero-allocation ingest path is pinned
//	    exactly).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the JSON schema of BENCH_baseline.json / BENCH_pr.json.
type Snapshot struct {
	// NsPerOp maps benchmark name (no -N GOMAXPROCS suffix) to the best
	// observed ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// AllocsPerOp maps benchmark name to the best observed allocs/op —
	// present only for benchmarks run with -benchmem.
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
}

// benchLine matches `BenchmarkName-8  	 100	 12345 ns/op	 64 B/op	 2 allocs/op`
// (the memory columns are optional).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+[0-9.]+ B/op\s+([0-9]+) allocs/op)?`)

// parse reads go-test benchmark text and keeps the per-name minimum.
func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{NsPerOp: make(map[string]float64)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op in %q: %w", sc.Text(), err)
		}
		if prev, ok := snap.NsPerOp[m[1]]; !ok || ns < prev {
			snap.NsPerOp[m[1]] = ns
		}
		if m[3] != "" {
			allocs, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad allocs/op in %q: %w", sc.Text(), err)
			}
			if snap.AllocsPerOp == nil {
				snap.AllocsPerOp = make(map[string]float64)
			}
			if prev, ok := snap.AllocsPerOp[m[1]]; !ok || allocs < prev {
				snap.AllocsPerOp[m[1]] = allocs
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.NsPerOp) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmark lines found on stdin")
	}
	return snap, nil
}

func load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %w", path, err)
	}
	if len(snap.NsPerOp) == 0 {
		return nil, fmt.Errorf("benchdiff: %s holds no benchmarks", path)
	}
	return &snap, nil
}

// compare renders a per-benchmark report and returns the regressions.
func compare(base, cand *Snapshot, maxRegress float64, w io.Writer) []string {
	names := make([]string, 0, len(base.NsPerOp))
	for name := range base.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)

	var bad []string
	for _, name := range names {
		b := base.NsPerOp[name]
		c, ok := cand.NsPerOp[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: missing from candidate", name))
			continue
		}
		delta := c/b - 1
		verdict := "ok"
		if delta > maxRegress {
			verdict = "REGRESSED"
			bad = append(bad, fmt.Sprintf("%s: %.0f ns/op -> %.0f ns/op (%+.1f%% > %+.1f%% allowed)",
				name, b, c, delta*100, maxRegress*100))
		}
		fmt.Fprintf(w, "%-40s %12.0f -> %12.0f ns/op  %+7.1f%%  %s\n", name, b, c, delta*100, verdict)
	}

	// Allocation gate: every baseline allocs/op entry is a ceiling. A
	// zero baseline is exact (the zero-allocation contract admits no
	// slack), a non-zero baseline gets the same fractional headroom as
	// ns/op.
	allocNames := make([]string, 0, len(base.AllocsPerOp))
	for name := range base.AllocsPerOp {
		allocNames = append(allocNames, name)
	}
	sort.Strings(allocNames)
	for _, name := range allocNames {
		b := base.AllocsPerOp[name]
		c, ok := cand.AllocsPerOp[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: allocs/op missing from candidate (run with -benchmem)", name))
			continue
		}
		limit := b * (1 + maxRegress)
		verdict := "ok"
		if c > limit {
			verdict = "REGRESSED"
			bad = append(bad, fmt.Sprintf("%s: %.0f allocs/op -> %.0f allocs/op (limit %.0f)",
				name, b, c, limit))
		}
		fmt.Fprintf(w, "%-40s %12.0f -> %12.0f allocs/op          %s\n", name, b, c, verdict)
	}
	return bad
}

func main() {
	var (
		parseMode  = flag.Bool("parse", false, "parse go-test bench text from stdin to JSON on stdout")
		baseline   = flag.String("baseline", "", "baseline snapshot JSON")
		candidate  = flag.String("candidate", "", "candidate snapshot JSON")
		maxRegress = flag.Float64("max-regress", 0.25, "max allowed fractional ns/op regression")
	)
	flag.Parse()

	if *parseMode {
		snap, err := parse(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	if *baseline == "" || *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: need -parse, or -baseline and -candidate")
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cand, err := load(*candidate)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if bad := compare(base, cand, *maxRegress, os.Stdout); len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchdiff: %d regression(s):\n  %s\n", len(bad), strings.Join(bad, "\n  "))
		os.Exit(1)
	}
	fmt.Println("benchdiff: all benchmarks within budget")
}
