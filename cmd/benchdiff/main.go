// Command benchdiff is the benchmark regression gate.
//
// Two modes:
//
//	go test -bench ... | benchdiff -parse > BENCH_pr.json
//	    Parse `go test -bench` text from stdin into canonical JSON: per
//	    benchmark (GOMAXPROCS suffix stripped), the minimum ns/op across
//	    all -count repetitions — min, not mean, because noise on a shared
//	    CI runner only ever adds time. With -benchmem output, allocs/op
//	    is captured the same way (minimum per name).
//
//	benchdiff -baseline BENCH_baseline.json -candidate BENCH_pr.json -max-regress 0.25
//	    Exit non-zero if any baseline benchmark is missing from the
//	    candidate, slowed down by more than -max-regress, or allocates
//	    more than the baseline allows (a 0-alloc baseline admits no
//	    allocations at all — the zero-allocation ingest path is pinned
//	    exactly).
//
//	benchdiff -scaling -out SCALING.md -min-speedup 1.0 gm1.json gm2.json gm4.json
//	    Render the multicore scaling curve of the sharded engine from
//	    per-GOMAXPROCS snapshots (each produced by -parse under a
//	    different GOMAXPROCS) as a markdown speedup table, and gate the
//	    4-shard configuration at the widest GOMAXPROCS against the
//	    serial reference. The gate is skipped — loudly — when the
//	    capturing runner has fewer CPUs than the sweep's widest
//	    GOMAXPROCS, so 1-core dev boxes still produce the table.
//
// Every -parse snapshot is stamped with the capturing runner's CPU
// count; compare refuses to gate two stamped snapshots from different
// core counts, because ns/op across core counts is not a regression
// signal.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is the JSON schema of BENCH_baseline.json / BENCH_pr.json.
type Snapshot struct {
	// NsPerOp maps benchmark name (no -N GOMAXPROCS suffix) to the best
	// observed ns/op.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// AllocsPerOp maps benchmark name to the best observed allocs/op —
	// present only for benchmarks run with -benchmem.
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
	// Runner records the machine the snapshot was captured on. Absent in
	// snapshots written before stamping existed (the legacy migration
	// path: such baselines compare with a warning instead of engaging
	// the core-count refusal).
	Runner *RunnerInfo `json:"runner,omitempty"`
}

// RunnerInfo is the capturing machine's identity, stamped at -parse
// time. NumCPU is the comparability key: ns/op from a 1-core container
// and a 4-core CI runner are different experiments. GOMAXPROCS is what
// the -scaling mode sweeps.
type RunnerInfo struct {
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
}

func currentRunner() *RunnerInfo {
	return &RunnerInfo{
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
	}
}

// runnerGate decides whether two snapshots may be compared. Both
// stamped with differing CPU counts is a hard refusal; an unstamped
// side compares with a warning so pre-stamp baselines keep gating
// until they are re-captured.
func runnerGate(base, cand *Snapshot) (warning string, err error) {
	switch {
	case base.Runner == nil:
		return "benchdiff: baseline carries no runner stamp; comparing anyway (re-capture with make bench-baseline to engage the core-count guard)", nil
	case cand.Runner == nil:
		return "benchdiff: candidate carries no runner stamp; comparing anyway", nil
	case base.Runner.NumCPU != cand.Runner.NumCPU:
		return "", fmt.Errorf(
			"benchdiff: refusing to compare: baseline captured on %d CPUs (%s/%s), candidate on %d CPUs (%s/%s) — ns/op across core counts is not a regression signal; re-capture the baseline on this machine class",
			base.Runner.NumCPU, base.Runner.GOOS, base.Runner.GOARCH,
			cand.Runner.NumCPU, cand.Runner.GOOS, cand.Runner.GOARCH)
	}
	return "", nil
}

// benchLine matches `BenchmarkName-8  	 100	 12345 ns/op	 64 B/op	 2 allocs/op`
// (the memory columns are optional).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+[0-9.]+ B/op\s+([0-9]+) allocs/op)?`)

// parse reads go-test benchmark text and keeps the per-name minimum.
func parse(r io.Reader) (*Snapshot, error) {
	snap := &Snapshot{NsPerOp: make(map[string]float64)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdiff: bad ns/op in %q: %w", sc.Text(), err)
		}
		if prev, ok := snap.NsPerOp[m[1]]; !ok || ns < prev {
			snap.NsPerOp[m[1]] = ns
		}
		if m[3] != "" {
			allocs, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdiff: bad allocs/op in %q: %w", sc.Text(), err)
			}
			if snap.AllocsPerOp == nil {
				snap.AllocsPerOp = make(map[string]float64)
			}
			if prev, ok := snap.AllocsPerOp[m[1]]; !ok || allocs < prev {
				snap.AllocsPerOp[m[1]] = allocs
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.NsPerOp) == 0 {
		return nil, fmt.Errorf("benchdiff: no benchmark lines found on stdin")
	}
	return snap, nil
}

func load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %w", path, err)
	}
	if len(snap.NsPerOp) == 0 {
		return nil, fmt.Errorf("benchdiff: %s holds no benchmarks", path)
	}
	return &snap, nil
}

// compare renders a per-benchmark report and returns the regressions.
func compare(base, cand *Snapshot, maxRegress float64, w io.Writer) []string {
	names := make([]string, 0, len(base.NsPerOp))
	for name := range base.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)

	var bad []string
	for _, name := range names {
		b := base.NsPerOp[name]
		c, ok := cand.NsPerOp[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: missing from candidate", name))
			continue
		}
		delta := c/b - 1
		verdict := "ok"
		if delta > maxRegress {
			verdict = "REGRESSED"
			bad = append(bad, fmt.Sprintf("%s: %.0f ns/op -> %.0f ns/op (%+.1f%% > %+.1f%% allowed)",
				name, b, c, delta*100, maxRegress*100))
		}
		fmt.Fprintf(w, "%-40s %12.0f -> %12.0f ns/op  %+7.1f%%  %s\n", name, b, c, delta*100, verdict)
	}

	// Allocation gate: every baseline allocs/op entry is a ceiling. A
	// zero baseline is exact (the zero-allocation contract admits no
	// slack), a non-zero baseline gets the same fractional headroom as
	// ns/op.
	allocNames := make([]string, 0, len(base.AllocsPerOp))
	for name := range base.AllocsPerOp {
		allocNames = append(allocNames, name)
	}
	sort.Strings(allocNames)
	for _, name := range allocNames {
		b := base.AllocsPerOp[name]
		c, ok := cand.AllocsPerOp[name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: allocs/op missing from candidate (run with -benchmem)", name))
			continue
		}
		limit := b * (1 + maxRegress)
		verdict := "ok"
		if c > limit {
			verdict = "REGRESSED"
			bad = append(bad, fmt.Sprintf("%s: %.0f allocs/op -> %.0f allocs/op (limit %.0f)",
				name, b, c, limit))
		}
		fmt.Fprintf(w, "%-40s %12.0f -> %12.0f allocs/op          %s\n", name, b, c, verdict)
	}
	return bad
}

// scalingPoint is one per-GOMAXPROCS snapshot of the sharded-engine
// sweep.
type scalingPoint struct {
	gm   int
	snap *Snapshot
}

// loadScaling reads the sweep's snapshot files. Every file must carry a
// runner stamp — the stamp's GOMAXPROCS is the column key.
func loadScaling(paths []string) ([]scalingPoint, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("benchdiff: -scaling needs per-GOMAXPROCS snapshot files as arguments")
	}
	pts := make([]scalingPoint, 0, len(paths))
	for _, p := range paths {
		snap, err := load(p)
		if err != nil {
			return nil, err
		}
		if snap.Runner == nil {
			return nil, fmt.Errorf("benchdiff: %s carries no runner stamp; -scaling needs snapshots from a current benchdiff -parse", p)
		}
		pts = append(pts, scalingPoint{gm: snap.Runner.GOMAXPROCS, snap: snap})
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].gm < pts[j].gm })
	return pts, nil
}

// scalingReport renders the speedup table and gates gateVariant at the
// widest GOMAXPROCS against the serial reference (serialVariant at
// GOMAXPROCS=1). Speedup = serial-reference ns / cell ns. The gate is
// skipped with a loud notice when the capturing runner has fewer CPUs
// than the sweep's widest GOMAXPROCS — the curve cannot rise where the
// cores do not exist.
func scalingReport(pts []scalingPoint, bench, serialVariant, gateVariant string, minSpeedup float64) (string, []string, error) {
	serialName := bench + "/" + serialVariant
	if pts[0].gm != 1 {
		return "", nil, fmt.Errorf("benchdiff: -scaling needs a GOMAXPROCS=1 snapshot for the serial reference (narrowest provided: %d)", pts[0].gm)
	}
	serial, ok := pts[0].snap.NsPerOp[serialName]
	if !ok {
		return "", nil, fmt.Errorf("benchdiff: serial reference %s missing from the GOMAXPROCS=1 snapshot", serialName)
	}

	// Rows: every variant of the bench seen in any snapshot, sorted.
	prefix := bench + "/"
	rowSet := map[string]bool{}
	for _, pt := range pts {
		for name := range pt.snap.NsPerOp {
			if strings.HasPrefix(name, prefix) {
				rowSet[name] = true
			}
		}
	}
	if len(rowSet) == 0 {
		return "", nil, fmt.Errorf("benchdiff: no %s* results in any snapshot", prefix)
	}
	rows := make([]string, 0, len(rowSet))
	for name := range rowSet {
		rows = append(rows, name)
	}
	sort.Strings(rows)

	last := pts[len(pts)-1]
	var b strings.Builder
	fmt.Fprintf(&b, "# Sharded engine scaling\n\n")
	fmt.Fprintf(&b, "Captured on %s/%s, %d CPUs. Serial reference: `%s` at GOMAXPROCS=1 (%.1f ms); each cell shows ns/op as ms and its speedup over that reference.\n\n",
		last.snap.Runner.GOOS, last.snap.Runner.GOARCH, last.snap.Runner.NumCPU, serialName, serial/1e6)
	fmt.Fprintf(&b, "| benchmark |")
	for _, pt := range pts {
		fmt.Fprintf(&b, " GOMAXPROCS=%d |", pt.gm)
	}
	fmt.Fprintf(&b, "\n|---|")
	for range pts {
		fmt.Fprintf(&b, "---|")
	}
	fmt.Fprintf(&b, "\n")
	for _, row := range rows {
		fmt.Fprintf(&b, "| %s |", row)
		for _, pt := range pts {
			ns, ok := pt.snap.NsPerOp[row]
			if !ok {
				fmt.Fprintf(&b, " — |")
				continue
			}
			fmt.Fprintf(&b, " %.1f ms (%.2fx) |", ns/1e6, serial/ns)
		}
		fmt.Fprintf(&b, "\n")
	}

	var bad []string
	gateName := bench + "/" + gateVariant
	switch {
	case last.snap.Runner.NumCPU < last.gm:
		fmt.Fprintf(&b, "\n**Gate SKIPPED**: runner has %d CPUs < GOMAXPROCS=%d — parallel speedup is not measurable here; the CI scaling job enforces it on a multicore runner.\n",
			last.snap.Runner.NumCPU, last.gm)
	default:
		ns, ok := last.snap.NsPerOp[gateName]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: missing from the GOMAXPROCS=%d snapshot", gateName, last.gm))
			break
		}
		speedup := serial / ns
		verdict := "PASS"
		if speedup < minSpeedup {
			verdict = "FAIL"
			bad = append(bad, fmt.Sprintf("%s @ GOMAXPROCS=%d: speedup %.2fx < %.2fx required",
				gateName, last.gm, speedup, minSpeedup))
		}
		fmt.Fprintf(&b, "\nGate: %s @ GOMAXPROCS=%d speedup %.2fx (>= %.2fx required) — **%s**\n",
			gateName, last.gm, speedup, minSpeedup, verdict)
	}
	return b.String(), bad, nil
}

func main() {
	var (
		parseMode  = flag.Bool("parse", false, "parse go-test bench text from stdin to JSON on stdout")
		baseline   = flag.String("baseline", "", "baseline snapshot JSON")
		candidate  = flag.String("candidate", "", "candidate snapshot JSON")
		maxRegress = flag.Float64("max-regress", 0.25, "max allowed fractional ns/op regression")

		scaling    = flag.Bool("scaling", false, "render a multicore speedup table from per-GOMAXPROCS snapshot args")
		out        = flag.String("out", "", "with -scaling: also write the markdown table to this file")
		minSpeedup = flag.Float64("min-speedup", 1.0, "with -scaling: minimum required speedup of the gated variant")
		bench      = flag.String("scaling-bench", "BenchmarkEngineSharded", "with -scaling: benchmark family to tabulate")
		serialVar  = flag.String("serial-variant", "shards=1", "with -scaling: sub-benchmark used as the serial reference")
		gateVar    = flag.String("gate-variant", "shards=4", "with -scaling: sub-benchmark the speedup gate applies to")
	)
	flag.Parse()

	if *parseMode {
		snap, err := parse(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		snap.Runner = currentRunner()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	if *scaling {
		pts, err := loadScaling(flag.Args())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		md, bad, err := scalingReport(pts, *bench, *serialVar, *gateVar, *minSpeedup)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *out != "" {
			if err := os.WriteFile(*out, []byte(md), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
		fmt.Print(md)
		if len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "\nbenchdiff: scaling gate failed:\n  %s\n", strings.Join(bad, "\n  "))
			os.Exit(1)
		}
		return
	}

	if *baseline == "" || *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: need -parse, -scaling, or -baseline and -candidate")
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cand, err := load(*candidate)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	warn, err := runnerGate(base, cand)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if warn != "" {
		fmt.Fprintln(os.Stderr, warn)
	}
	if bad := compare(base, cand, *maxRegress, os.Stdout); len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchdiff: %d regression(s):\n  %s\n", len(bad), strings.Join(bad, "\n  "))
		os.Exit(1)
	}
	fmt.Println("benchdiff: all benchmarks within budget")
}
