package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: rpingmesh
BenchmarkAnalyzerWindow-8   	     120	   9876543 ns/op	 1234 B/op	  56 allocs/op
BenchmarkAnalyzerWindow-8   	     130	   9500000 ns/op	 1234 B/op	  56 allocs/op
BenchmarkPipelineIngest-8   	 2000000	       600.5 ns/op
BenchmarkPipelineIngest-8   	 2100000	       580.2 ns/op
PASS
ok  	rpingmesh	3.21s
`

func TestParseKeepsMinimumAndStripsSuffix(t *testing.T) {
	snap, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.NsPerOp["BenchmarkAnalyzerWindow"]; got != 9500000 {
		t.Fatalf("AnalyzerWindow min = %v, want 9500000", got)
	}
	if got := snap.NsPerOp["BenchmarkPipelineIngest"]; got != 580.2 {
		t.Fatalf("PipelineIngest min = %v, want 580.2", got)
	}
	if _, ok := snap.NsPerOp["BenchmarkAnalyzerWindow-8"]; ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("no benchmarks here\n")); err == nil {
		t.Fatal("parse accepted input with no benchmark lines")
	}
}

// TestCompareFailsOnSyntheticRegression is the gate's own acceptance
// test: a 2x slowdown must be flagged at the 25% threshold.
func TestCompareFailsOnSyntheticRegression(t *testing.T) {
	base := &Snapshot{NsPerOp: map[string]float64{
		"BenchmarkAnalyzerWindow": 1000,
		"BenchmarkPipelineIngest": 500,
	}}
	cand := &Snapshot{NsPerOp: map[string]float64{
		"BenchmarkAnalyzerWindow": 2000, // 2x — must fail
		"BenchmarkPipelineIngest": 510,  // +2% — fine
	}}
	var out strings.Builder
	bad := compare(base, cand, 0.25, &out)
	if len(bad) != 1 {
		t.Fatalf("want exactly 1 regression, got %d: %v", len(bad), bad)
	}
	if !strings.Contains(bad[0], "BenchmarkAnalyzerWindow") {
		t.Fatalf("wrong benchmark flagged: %v", bad[0])
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("report missing REGRESSED marker:\n%s", out.String())
	}
}

func TestCompareWithinBudgetPasses(t *testing.T) {
	base := &Snapshot{NsPerOp: map[string]float64{"BenchmarkIncidentFold": 800}}
	cand := &Snapshot{NsPerOp: map[string]float64{"BenchmarkIncidentFold": 900}} // +12.5%
	var out strings.Builder
	if bad := compare(base, cand, 0.25, &out); len(bad) != 0 {
		t.Fatalf("unexpected regressions: %v", bad)
	}
}

func TestCompareFlagsMissingBenchmark(t *testing.T) {
	base := &Snapshot{NsPerOp: map[string]float64{"BenchmarkIncidentFold": 800}}
	cand := &Snapshot{NsPerOp: map[string]float64{"BenchmarkOther": 1}}
	var out strings.Builder
	bad := compare(base, cand, 0.25, &out)
	if len(bad) != 1 || !strings.Contains(bad[0], "missing") {
		t.Fatalf("missing benchmark not flagged: %v", bad)
	}
}

func TestParseCapturesAllocs(t *testing.T) {
	snap, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.AllocsPerOp["BenchmarkAnalyzerWindow"]; got != 56 {
		t.Fatalf("AnalyzerWindow allocs = %v, want 56", got)
	}
	// PipelineIngest lines carry no -benchmem columns; no entry expected.
	if _, ok := snap.AllocsPerOp["BenchmarkPipelineIngest"]; ok {
		t.Fatal("allocs recorded for a benchmark without -benchmem columns")
	}
}

// A zero-alloc baseline is exact: one allocation per op must fail the
// gate regardless of the fractional headroom.
func TestCompareZeroAllocBaselineIsExact(t *testing.T) {
	base := &Snapshot{
		NsPerOp:     map[string]float64{"BenchmarkPipelineIngest": 40},
		AllocsPerOp: map[string]float64{"BenchmarkPipelineIngest": 0},
	}
	cand := &Snapshot{
		NsPerOp:     map[string]float64{"BenchmarkPipelineIngest": 41},
		AllocsPerOp: map[string]float64{"BenchmarkPipelineIngest": 1},
	}
	var out strings.Builder
	bad := compare(base, cand, 0.25, &out)
	if len(bad) != 1 || !strings.Contains(bad[0], "allocs/op") {
		t.Fatalf("alloc regression not flagged: %v", bad)
	}
}

// TestRunnerGate: stamped snapshots from different core counts refuse
// to compare; an unstamped side (legacy baseline) compares with a
// warning; matching stamps pass silently.
func TestRunnerGate(t *testing.T) {
	stamped := func(cpus int) *Snapshot {
		return &Snapshot{
			NsPerOp: map[string]float64{"BenchmarkIncidentFold": 1},
			Runner:  &RunnerInfo{NumCPU: cpus, GOMAXPROCS: cpus, GOOS: "linux", GOARCH: "amd64"},
		}
	}
	bare := &Snapshot{NsPerOp: map[string]float64{"BenchmarkIncidentFold": 1}}

	if _, err := runnerGate(stamped(1), stamped(4)); err == nil {
		t.Fatal("differing core counts not refused")
	}
	warn, err := runnerGate(bare, stamped(4))
	if err != nil || !strings.Contains(warn, "no runner stamp") {
		t.Fatalf("unstamped baseline: warn=%q err=%v, want warning and nil error", warn, err)
	}
	warn, err = runnerGate(stamped(4), bare)
	if err != nil || warn == "" {
		t.Fatalf("unstamped candidate: warn=%q err=%v, want warning and nil error", warn, err)
	}
	warn, err = runnerGate(stamped(4), stamped(4))
	if err != nil || warn != "" {
		t.Fatalf("matching stamps: warn=%q err=%v, want clean pass", warn, err)
	}
}

func scalingFixture(cpus int, serialNs, ns4gm4 float64) []scalingPoint {
	mk := func(gm int, n1, n2, n4 float64) scalingPoint {
		return scalingPoint{gm: gm, snap: &Snapshot{
			NsPerOp: map[string]float64{
				"BenchmarkEngineSharded/shards=1": n1,
				"BenchmarkEngineSharded/shards=2": n2,
				"BenchmarkEngineSharded/shards=4": n4,
			},
			Runner: &RunnerInfo{NumCPU: cpus, GOMAXPROCS: gm, GOOS: "linux", GOARCH: "amd64"},
		}}
	}
	return []scalingPoint{
		mk(1, serialNs, serialNs*1.1, serialNs*1.2),
		mk(2, serialNs, serialNs*0.6, serialNs*0.7),
		mk(4, serialNs, serialNs*0.55, ns4gm4),
	}
}

// TestScalingReportGate: a 2x speedup at shards=4/GOMAXPROCS=4 passes
// the 1.5x gate and the table carries every cell; a sub-threshold
// speedup fails it.
func TestScalingReportGate(t *testing.T) {
	pts := scalingFixture(4, 40e6, 20e6) // 2.00x
	md, bad, err := scalingReport(pts, "BenchmarkEngineSharded", "shards=1", "shards=4", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("2x speedup failed the 1.5x gate: %v", bad)
	}
	for _, frag := range []string{"GOMAXPROCS=1", "GOMAXPROCS=4", "shards=2", "2.00x", "PASS", "4 CPUs"} {
		if !strings.Contains(md, frag) {
			t.Fatalf("table missing %q:\n%s", frag, md)
		}
	}

	slow := scalingFixture(4, 40e6, 35e6) // 1.14x
	_, bad, err = scalingReport(slow, "BenchmarkEngineSharded", "shards=1", "shards=4", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || !strings.Contains(bad[0], "1.14x < 1.50x") {
		t.Fatalf("sub-threshold speedup not flagged: %v", bad)
	}
}

// TestScalingReportSkipsGateOnSmallRunner: a 1-CPU runner cannot show
// parallel speedup — the gate is skipped loudly instead of failing.
func TestScalingReportSkipsGateOnSmallRunner(t *testing.T) {
	pts := scalingFixture(1, 40e6, 48e6) // 0.83x — would fail any gate
	md, bad, err := scalingReport(pts, "BenchmarkEngineSharded", "shards=1", "shards=4", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("gate fired on a 1-CPU runner: %v", bad)
	}
	if !strings.Contains(md, "Gate SKIPPED") {
		t.Fatalf("skip notice missing:\n%s", md)
	}
}

// TestScalingReportNeedsSerialReference: no GOMAXPROCS=1 snapshot, or a
// GOMAXPROCS=1 snapshot without the serial variant, is a hard error.
func TestScalingReportNeedsSerialReference(t *testing.T) {
	pts := scalingFixture(4, 40e6, 20e6)[1:]
	if _, _, err := scalingReport(pts, "BenchmarkEngineSharded", "shards=1", "shards=4", 1.0); err == nil {
		t.Fatal("missing GOMAXPROCS=1 snapshot accepted")
	}
	pts = scalingFixture(4, 40e6, 20e6)
	delete(pts[0].snap.NsPerOp, "BenchmarkEngineSharded/shards=1")
	if _, _, err := scalingReport(pts, "BenchmarkEngineSharded", "shards=1", "shards=4", 1.0); err == nil {
		t.Fatal("missing serial variant accepted")
	}
}

func TestCompareAllocWithinBudgetAndMissing(t *testing.T) {
	base := &Snapshot{
		NsPerOp:     map[string]float64{"BenchmarkAnalyzerWindow": 1000},
		AllocsPerOp: map[string]float64{"BenchmarkAnalyzerWindow": 100},
	}
	cand := &Snapshot{
		NsPerOp:     map[string]float64{"BenchmarkAnalyzerWindow": 1000},
		AllocsPerOp: map[string]float64{"BenchmarkAnalyzerWindow": 120}, // +20% < 25%
	}
	var out strings.Builder
	if bad := compare(base, cand, 0.25, &out); len(bad) != 0 {
		t.Fatalf("unexpected regressions: %v", bad)
	}
	// A baseline with allocs but a candidate without must fail loudly.
	cand.AllocsPerOp = nil
	bad := compare(base, cand, 0.25, &out)
	if len(bad) != 1 || !strings.Contains(bad[0], "missing") {
		t.Fatalf("missing allocs not flagged: %v", bad)
	}
}
