package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: rpingmesh
BenchmarkAnalyzerWindow-8   	     120	   9876543 ns/op	 1234 B/op	  56 allocs/op
BenchmarkAnalyzerWindow-8   	     130	   9500000 ns/op	 1234 B/op	  56 allocs/op
BenchmarkPipelineIngest-8   	 2000000	       600.5 ns/op
BenchmarkPipelineIngest-8   	 2100000	       580.2 ns/op
PASS
ok  	rpingmesh	3.21s
`

func TestParseKeepsMinimumAndStripsSuffix(t *testing.T) {
	snap, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.NsPerOp["BenchmarkAnalyzerWindow"]; got != 9500000 {
		t.Fatalf("AnalyzerWindow min = %v, want 9500000", got)
	}
	if got := snap.NsPerOp["BenchmarkPipelineIngest"]; got != 580.2 {
		t.Fatalf("PipelineIngest min = %v, want 580.2", got)
	}
	if _, ok := snap.NsPerOp["BenchmarkAnalyzerWindow-8"]; ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("no benchmarks here\n")); err == nil {
		t.Fatal("parse accepted input with no benchmark lines")
	}
}

// TestCompareFailsOnSyntheticRegression is the gate's own acceptance
// test: a 2x slowdown must be flagged at the 25% threshold.
func TestCompareFailsOnSyntheticRegression(t *testing.T) {
	base := &Snapshot{NsPerOp: map[string]float64{
		"BenchmarkAnalyzerWindow": 1000,
		"BenchmarkPipelineIngest": 500,
	}}
	cand := &Snapshot{NsPerOp: map[string]float64{
		"BenchmarkAnalyzerWindow": 2000, // 2x — must fail
		"BenchmarkPipelineIngest": 510,  // +2% — fine
	}}
	var out strings.Builder
	bad := compare(base, cand, 0.25, &out)
	if len(bad) != 1 {
		t.Fatalf("want exactly 1 regression, got %d: %v", len(bad), bad)
	}
	if !strings.Contains(bad[0], "BenchmarkAnalyzerWindow") {
		t.Fatalf("wrong benchmark flagged: %v", bad[0])
	}
	if !strings.Contains(out.String(), "REGRESSED") {
		t.Fatalf("report missing REGRESSED marker:\n%s", out.String())
	}
}

func TestCompareWithinBudgetPasses(t *testing.T) {
	base := &Snapshot{NsPerOp: map[string]float64{"BenchmarkIncidentFold": 800}}
	cand := &Snapshot{NsPerOp: map[string]float64{"BenchmarkIncidentFold": 900}} // +12.5%
	var out strings.Builder
	if bad := compare(base, cand, 0.25, &out); len(bad) != 0 {
		t.Fatalf("unexpected regressions: %v", bad)
	}
}

func TestCompareFlagsMissingBenchmark(t *testing.T) {
	base := &Snapshot{NsPerOp: map[string]float64{"BenchmarkIncidentFold": 800}}
	cand := &Snapshot{NsPerOp: map[string]float64{"BenchmarkOther": 1}}
	var out strings.Builder
	bad := compare(base, cand, 0.25, &out)
	if len(bad) != 1 || !strings.Contains(bad[0], "missing") {
		t.Fatalf("missing benchmark not flagged: %v", bad)
	}
}

func TestParseCapturesAllocs(t *testing.T) {
	snap, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if got := snap.AllocsPerOp["BenchmarkAnalyzerWindow"]; got != 56 {
		t.Fatalf("AnalyzerWindow allocs = %v, want 56", got)
	}
	// PipelineIngest lines carry no -benchmem columns; no entry expected.
	if _, ok := snap.AllocsPerOp["BenchmarkPipelineIngest"]; ok {
		t.Fatal("allocs recorded for a benchmark without -benchmem columns")
	}
}

// A zero-alloc baseline is exact: one allocation per op must fail the
// gate regardless of the fractional headroom.
func TestCompareZeroAllocBaselineIsExact(t *testing.T) {
	base := &Snapshot{
		NsPerOp:     map[string]float64{"BenchmarkPipelineIngest": 40},
		AllocsPerOp: map[string]float64{"BenchmarkPipelineIngest": 0},
	}
	cand := &Snapshot{
		NsPerOp:     map[string]float64{"BenchmarkPipelineIngest": 41},
		AllocsPerOp: map[string]float64{"BenchmarkPipelineIngest": 1},
	}
	var out strings.Builder
	bad := compare(base, cand, 0.25, &out)
	if len(bad) != 1 || !strings.Contains(bad[0], "allocs/op") {
		t.Fatalf("alloc regression not flagged: %v", bad)
	}
}

func TestCompareAllocWithinBudgetAndMissing(t *testing.T) {
	base := &Snapshot{
		NsPerOp:     map[string]float64{"BenchmarkAnalyzerWindow": 1000},
		AllocsPerOp: map[string]float64{"BenchmarkAnalyzerWindow": 100},
	}
	cand := &Snapshot{
		NsPerOp:     map[string]float64{"BenchmarkAnalyzerWindow": 1000},
		AllocsPerOp: map[string]float64{"BenchmarkAnalyzerWindow": 120}, // +20% < 25%
	}
	var out strings.Builder
	if bad := compare(base, cand, 0.25, &out); len(bad) != 0 {
		t.Fatalf("unexpected regressions: %v", bad)
	}
	// A baseline with allocs but a candidate without must fail loudly.
	cand.AllocsPerOp = nil
	bad := compare(base, cand, 0.25, &out)
	if len(bad) != 1 || !strings.Contains(bad[0], "missing") {
		t.Fatalf("missing allocs not flagged: %v", bad)
	}
}
